"""Fixed-width MSB-first bit packing of word arrays.

This is the payload encoding of the MPLG, RAZE, and RARE stages: after a
stage decides that every word in a group needs only ``width`` bits, the
low ``width`` bits of each word are concatenated into a dense bit stream.
Keeping the width fixed within a group is what makes independent parallel
decompression of each value possible on a GPU (paper §3.1); here it makes
the whole codec expressible as numpy reshapes.

The bit stream is MSB-first: the first packed word occupies the highest
bits of the first output byte.  The final byte is zero-padded.
"""

from __future__ import annotations

import numpy as np


def packed_size_bytes(count: int, width: int) -> int:
    """Size in bytes of ``count`` values packed at ``width`` bits each."""
    return (count * width + 7) // 8


def pack_words(words: np.ndarray, width: int, word_bits: int) -> bytes:
    """Pack the low ``width`` bits of each word into a dense byte stream.

    Bits above ``width`` must be zero (they are discarded); stages always
    guarantee this by construction.  ``width == 0`` packs to zero bytes.
    """
    if not 0 <= width <= word_bits:
        raise ValueError(f"width {width} out of range for {word_bits}-bit words")
    n = len(words)
    if n == 0 or width == 0:
        return b""
    word_bytes = word_bits // 8
    be = words.astype(words.dtype.newbyteorder(">"), copy=False)
    bits = np.unpackbits(be.view(np.uint8).reshape(n, word_bytes), axis=1)
    low = bits[:, word_bits - width :]
    return np.packbits(low.reshape(-1)).tobytes()


def unpack_words(buf: bytes | np.ndarray, count: int, width: int, word_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_words`; returns ``count`` unsigned words."""
    if not 0 <= width <= word_bits:
        raise ValueError(f"width {width} out of range for {word_bits}-bit words")
    dtype = np.dtype(f"u{word_bits // 8}")
    if count == 0 or width == 0:
        return np.zeros(count, dtype=dtype)
    raw = np.frombuffer(buf, dtype=np.uint8) if isinstance(buf, (bytes, bytearray, memoryview)) else np.asarray(buf, dtype=np.uint8)
    need = packed_size_bytes(count, width)
    if len(raw) < need:
        raise ValueError(f"packed buffer too short: have {len(raw)} bytes, need {need}")
    bits = np.unpackbits(raw[:need])[: count * width].reshape(count, width)
    word_bytes = word_bits // 8
    full = np.zeros((count, word_bits), dtype=np.uint8)
    full[:, word_bits - width :] = bits
    be_bytes = np.packbits(full.reshape(-1)).reshape(count, word_bytes)
    return be_bytes.view(np.dtype(f">u{word_bytes}")).reshape(count).astype(dtype)
