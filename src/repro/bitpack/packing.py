"""Fixed-width MSB-first bit packing of word arrays.

This is the payload encoding of the MPLG, RAZE, and RARE stages: after a
stage decides that every word in a group needs only ``width`` bits, the
low ``width`` bits of each word are concatenated into a dense bit stream.
Keeping the width fixed within a group is what makes independent parallel
decompression of each value possible on a GPU (paper §3.1).

The bit stream is MSB-first: the first packed word occupies the highest
bits of the first output byte.  The final byte is zero-padded, and the
decoder rejects streams whose padding bits are nonzero — those bytes can
only come from corruption, never from :func:`pack_words`.

The heavy lifting lives in :mod:`repro.bitpack.lanes`, which computes the
identical byte stream via word-lane shift/OR kernels instead of the
historical one-byte-per-bit matrix (kept as a reference implementation in
the test suite).  Both functions dispatch through the kernel backend
registry (:mod:`repro.bitpack.backend`): the lane kernels are the
``numpy`` reference, the ``numba`` backend swaps in fused single-pass
JIT loops, and every backend must produce identical wire bytes.
Validation (width range, buffer length, pad bits) happens here, before
dispatch, so every backend shares one error contract.
"""

from __future__ import annotations

import numpy as np

from repro.bitpack import backend as _backend
from repro.bitpack.lanes import _NATIVE
from repro.errors import CorruptDataError


def packed_size_bytes(count: int, width: int) -> int:
    """Size in bytes of ``count`` values packed at ``width`` bits each."""
    return (count * width + 7) // 8


def pack_words(words: np.ndarray, width: int, word_bits: int) -> bytes:
    """Pack the low ``width`` bits of each word into a dense byte stream.

    Bits above ``width`` must be zero (they are discarded); stages always
    guarantee this by construction.  ``width == 0`` packs to zero bytes.
    """
    if not 0 <= width <= word_bits:
        raise ValueError(f"width {width} out of range for {word_bits}-bit words")
    return _backend.kernel("pack_lanes")(words, width, word_bits)


def unpack_words(buf: bytes | np.ndarray, count: int, width: int, word_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_words`; returns ``count`` unsigned words.

    Raises ``ValueError`` if the buffer is shorter than the packed size
    and :class:`~repro.errors.CorruptDataError` if the zero padding in
    the final byte carries nonzero bits.
    """
    if not 0 <= width <= word_bits:
        raise ValueError(f"width {width} out of range for {word_bits}-bit words")
    if count == 0 or width == 0:
        return np.zeros(count, dtype=_NATIVE[word_bits])
    raw = (
        np.frombuffer(buf, dtype=np.uint8)
        if isinstance(buf, (bytes, bytearray, memoryview))
        else np.ascontiguousarray(buf, dtype=np.uint8)
    )
    need = packed_size_bytes(count, width)
    if len(raw) < need:
        raise ValueError(f"packed buffer too short: have {len(raw)} bytes, need {need}")
    pad_bits = need * 8 - count * width
    if pad_bits and int(raw[need - 1]) & ((1 << pad_bits) - 1):
        raise CorruptDataError(
            f"nonzero padding bits in final byte of packed stream "
            f"(count={count}, width={width})"
        )
    return _backend.kernel("unpack_lanes")(raw, count, width, word_bits)
