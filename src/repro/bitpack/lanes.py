"""Word-lane kernels for fixed-width MSB-first bit packing.

These kernels produce/consume the exact byte stream of the historical
``np.unpackbits``/``np.packbits`` bit-matrix implementation (MSB-first,
zero-padded final byte) while touching O(n·width/64) machine words
instead of O(n·width) bytes.  They are the hot path of MPLG, RZE, RAZE
and RARE; golden-format tests pin the layout, so any change here must
stay byte-identical.

Layouts and strategy
--------------------
``width % 8 == 0``
    The stream is the big-endian bytes of each value: a reshape + column
    slice, no bit arithmetic at all.
``width < 8``
    Pairs of values are merged (``(a << w) | b``) until the merged width
    is a multiple of 8, then the byte path serialises the merged values.
``9 <= width <= 49`` (non-aligned)
    *Chained-value lanes*: each value is top-aligned in a ``uint64`` lane
    and OR-chained with its successors (log2 rounds of doubling) until
    every lane holds at least ``width - 1 + win`` leading stream bits.
    Every ``win``-bit output window then comes from a single gather and
    a single left shift — the window is the top ``win`` bits of
    ``chain[v0] << r0``.
``50 <= width <= 63``
    Windows of 32 bits overlap at most two values (``win <= width``), so
    two gathers, two single shifts, and an OR build each window.

Unpacking mirrors this with *window tables*: ``W[j]`` holds the 64 (or
32) stream bits starting at 32-bit (or 16-bit) lane boundary ``j``,
built in a single strided big-endian ``astype`` over the padded stream.
Whenever ``off_max + width <= window_bits`` every value is one gather
plus two shifts; that covers all of ``word_bits == 32`` (a 31-bit value
at a 32-bit boundary spans at most 62 bits) and ``width <= 33`` for
64-bit words.  Only 64-bit words at ``width >= 34`` need a second
gather for the spill lane — and its shift is made single and defined by
pointing non-spilling values at the zero pad lane.

All index/shift plans are cached per ``(count, width)`` and marked
read-only, so the kernels are thread-safe and amortise to a handful of
vector ops per call.  Offset computations use float64 division, which is
exact for the operand ranges involved (total bit counts far below 2**52).
"""

from __future__ import annotations

import sys
from functools import lru_cache

import numpy as np

_U16 = np.uint16
_U32 = np.uint32
_U64 = np.uint64

_LITTLE = sys.byteorder == "little"

#: Pre-built dtypes, keyed by itemsize (dtype construction costs ~0.3us
#: per call — real money for 16 KiB chunks).
_BE = {k: np.dtype(f">u{k}") for k in (1, 2, 4, 8)}
_NATIVE = {32: np.dtype("u4"), 64: np.dtype("u8")}

#: LRU bound shared by every module-level plan cache below.  The plans
#: are keyed by ``(count, width)``, and a long-running ``fprz serve``
#: process sees an unbounded stream of distinct shapes (every request
#: geometry mints new keys) — the cap turns that into bounded memory at
#: the cost of re-deriving a plan on eviction (a few vector ops).
#: ``tests/bitpack/test_lanes_cache.py`` pins the bound.
PLAN_CACHE_SIZE = 512


def _freeze(arrays: tuple) -> tuple:
    """Mark cached plan arrays read-only (plans are shared across threads)."""
    for a in arrays:
        if isinstance(a, np.ndarray):
            a.flags.writeable = False
    return arrays


def _chain_rounds(width: int, win: int) -> int:
    """Doubling rounds so a lane covers ``width - 1 + win`` stream bits."""
    rounds = 0
    covered = width
    while min(covered, 64) < width - 1 + win:
        covered *= 2
        rounds += 1
    return rounds


@lru_cache(maxsize=PLAN_CACHE_SIZE)
def _single_gather_pack_plan(n: int, width: int, win: int):
    """Window origin value ``v0`` and in-value bit offset ``r0`` per window."""
    n_win = -(-(n * width) // win)
    bit0 = np.arange(n_win, dtype=np.float64) * float(win)
    v0f = np.floor_divide(bit0, float(width))
    v0 = v0f.astype(np.intp)
    r0 = (bit0 - v0f * float(width)).astype(_U64)
    return _freeze((v0, r0)) + (n_win,)


@lru_cache(maxsize=PLAN_CACHE_SIZE)
def _pair_pack_plan(n: int, width: int):
    """Two-contributor plan for 32-bit windows with ``width >= 32``."""
    n_win = -(-(n * width) // 32)
    bit0 = np.arange(n_win, dtype=np.float64) * 32.0
    v0f = np.floor_divide(bit0, float(width))
    v0 = v0f.astype(np.intp)
    r0 = (bit0 - v0f * float(width)).astype(_U64)
    q = _U64(width) - r0
    return _freeze((v0, v0 + 1, r0, q)) + (n_win,)


@lru_cache(maxsize=PLAN_CACHE_SIZE)
def _boundary_unpack_plan(count: int, width: int, grain: int, idx_dtype: str):
    """Window index and in-window offset per value at ``grain``-bit boundaries."""
    bitpos = np.arange(count, dtype=_U64) * _U64(width)
    q0 = (bitpos // _U64(grain)).astype(np.intp)
    off = (bitpos % _U64(grain)).astype(np.dtype(idx_dtype))
    return _freeze((q0, off))


@lru_cache(maxsize=PLAN_CACHE_SIZE)
def _two_lane_unpack_plan(count: int, width: int):
    """Two-gather plan over 64-bit lanes (widths 34..63 of 64-bit words).

    Values that do not spill past their base lane point their spill
    gather at the zero pad lane (index ``m``), so the spill shift is a
    single always-defined right shift (< 64) instead of a split pair.
    """
    need = (count * width + 7) // 8
    m = -(-need // 8)
    bitpos = np.arange(count, dtype=_U64) * _U64(width)
    l0 = (bitpos // _U64(64)).astype(np.intp)
    off = (bitpos % _U64(64)).astype(_U64)
    spills = off > _U64(64 - width)
    l1 = np.where(spills, l0 + 1, m)
    ts = np.where(spills, _U64(128 - width) - off, _U64(0))
    return _freeze((l0, l1, off, ts))


def _extract_top(acc: np.ndarray, win: int, nbytes: int) -> bytes:
    """Serialise the top ``win`` bits of each u64 lane, MSB-first."""
    if win == 32:
        if _LITTLE:
            out = acc.view(_U32)[1::2].byteswap()
        else:
            out = acc.view(_U32)[0::2]
    else:
        if _LITTLE:
            out = acc.view(_U16)[3::4].byteswap()
        else:
            out = acc.view(_U16)[0::4]
    return out.tobytes()[:nbytes]


def _pack_aligned(words: np.ndarray, width: int, word_bits: int) -> bytes:
    wbytes = width // 8
    if wbytes in (1, 2, 4, 8):
        # The stream is each value's low wbytes, big-endian: a single
        # truncating (and byteswapping) astype.
        return words.astype(_BE[wbytes]).tobytes()
    word_bytes = word_bits // 8
    be = words.astype(words.dtype.newbyteorder(">"), copy=False)
    return be.view(np.uint8).reshape(len(words), word_bytes)[:, word_bytes - wbytes :].tobytes()


def _pack_sub_byte(words: np.ndarray, width: int, nbytes: int) -> bytes:
    """width < 8: merge value pairs until the merged width is byte-aligned."""
    vals = words.astype(_U64) & _U64((1 << width) - 1)
    w = width
    while w % 8:
        if len(vals) & 1:
            vals = np.append(vals, _U64(0))
        vals = (vals[0::2] << _U64(w)) | vals[1::2]
        w *= 2
    be = vals.astype(">u8").view(np.uint8).reshape(len(vals), 8)
    return be[:, 8 - w // 8 :].tobytes()[:nbytes]


def pack_lanes(words: np.ndarray, width: int, word_bits: int) -> bytes:
    """Pack the low ``width`` bits of each word, MSB-first, zero-padded.

    Bits above ``width`` are discarded.  Byte-identical to the reference
    bit-matrix implementation for every ``(width, word_bits, len)``.
    """
    n = len(words)
    if n == 0 or width == 0:
        return b""
    nbytes = (n * width + 7) // 8
    if width % 8 == 0:
        return _pack_aligned(words, width, word_bits)
    if width < 8:
        return _pack_sub_byte(words, width, nbytes)
    if width <= 49:
        win = 32 if width <= 33 else 16
        rounds = _chain_rounds(width, win)
        pad = (1 << rounds) - 1
        chain = np.empty(n + pad, dtype=_U64)
        chain[:n] = words
        np.left_shift(chain[:n], _U64(64 - width), out=chain[:n])
        chain[n:] = 0
        step, span = 1, width
        for _ in range(rounds):
            tail = chain[step:] >> _U64(span)
            np.bitwise_or(tail, chain[: len(tail)], out=tail)
            chain = tail
            step <<= 1
            span <<= 1
        v0, r0, n_win = _single_gather_pack_plan(n, width, win)
        acc = chain[v0]
        np.left_shift(acc, r0, out=acc)
        return _extract_top(acc, win, nbytes)
    # 50..63: 32-bit windows overlap at most two values.
    v0, v1, r0, q, n_win = _pair_pack_plan(n, width)
    tvp = np.empty(n + 1, dtype=_U64)
    tvp[:n] = words
    np.left_shift(tvp[:n], _U64(64 - width), out=tvp[:n])
    tvp[n] = 0
    acc = tvp[v0]
    np.left_shift(acc, r0, out=acc)
    spill = tvp[v1]
    np.right_shift(spill, q, out=spill)
    np.bitwise_or(acc, spill, out=acc)
    return _extract_top(acc, 32, nbytes)


#: Zero padding shared by every window table (read-only, never resized).
_PAD = np.zeros(32, dtype=np.uint8)
_PAD.flags.writeable = False


def _window_table(raw: np.ndarray, need: int, stride: int, dtype, extra: int = 0) -> np.ndarray:
    """``dtype``-sized big-endian stream windows every ``stride`` bytes.

    ``W[j]`` is the stream's bytes ``[j*stride, j*stride + itemsize)``
    interpreted big-endian; bytes past ``need`` read as zero.  Built as
    one strided byteswapping ``astype`` over the zero-padded stream.
    ``extra`` appends that many additional trailing (zero) windows.
    """
    win_bytes = dtype().itemsize
    m = -(-need // stride) + extra
    total = (m - 1) * stride + win_bytes
    buf = np.concatenate((raw[:need], _PAD[: total - need]))
    be = np.ndarray(shape=(m,), dtype=_BE[win_bytes], buffer=buf, strides=(stride,))
    return be.astype(dtype)


def _unpack_aligned(raw: np.ndarray, count: int, width: int, word_bits: int, dtype) -> np.ndarray:
    wbytes = width // 8
    if wbytes in (1, 2, 4, 8):
        # The stream is contiguous big-endian wbytes values: one
        # widening (and byteswapping) astype.
        return raw[: count * wbytes].view(_BE[wbytes]).astype(dtype)
    word_bytes = word_bits // 8
    rows = np.zeros((count, word_bytes), dtype=np.uint8)
    rows[:, word_bytes - wbytes :] = raw[: count * wbytes].reshape(count, wbytes)
    return rows.reshape(-1).view(_BE[word_bytes]).astype(dtype)


def unpack_lanes(raw: np.ndarray, count: int, width: int, word_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_lanes`; ``raw`` must hold >= packed bytes."""
    dtype = _NATIVE[word_bits]
    if count == 0 or width == 0:
        return np.zeros(count, dtype=dtype)
    need = (count * width + 7) // 8
    if width % 8 == 0:
        return _unpack_aligned(raw, count, width, word_bits, dtype)
    if word_bits == 32 and width <= 17:
        # 32-bit windows at 16-bit grain hold any value: off(<=15)+width<=32.
        windows = _window_table(raw, need, 2, _U32)
        q0, off = _boundary_unpack_plan(count, width, 16, "u4")
        vals = windows[q0]
        np.left_shift(vals, off, out=vals)
        np.right_shift(vals, _U32(32 - width), out=vals)
        return vals
    if word_bits == 32:
        # 18..31: 64-bit windows at 32-bit grain, off(<=31)+width<=62.
        # After the left shift the value sits in the window's top 32
        # bits; the final right shift reads that (strided) half and
        # lands in a fresh contiguous uint32 array.
        windows = _window_table(raw, need, 4, _U64)
        q0, off = _boundary_unpack_plan(count, width, 32, "u8")
        vals = windows[q0]
        np.left_shift(vals, off, out=vals)
        top = vals.view(_U32)[1::2] if _LITTLE else vals.view(_U32)[0::2]
        return top >> _U32(32 - width)
    if width <= 33:
        # 64-bit windows at 32-bit grain hold any value: off(<=31)+width<=64.
        windows = _window_table(raw, need, 4, _U64)
        q0, off = _boundary_unpack_plan(count, width, 32, "u8")
        vals = windows[q0]
        np.left_shift(vals, off, out=vals)
        np.right_shift(vals, _U64(64 - width), out=vals)
        return vals
    # 34..63: base lane + spill lane (non-spilling values read the pad lane).
    lanes = _window_table(raw, need, 8, _U64, extra=1)
    l0, l1, off, ts = _two_lane_unpack_plan(count, width)
    vals = lanes[l0]
    np.left_shift(vals, off, out=vals)
    np.right_shift(vals, _U64(64 - width), out=vals)
    spill = lanes[l1]
    np.right_shift(spill, ts, out=spill)
    np.bitwise_or(vals, spill, out=vals)
    return vals
