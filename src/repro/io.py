"""Streaming compression: frame-by-frame pipelines over file objects.

Instruments do not hand you one array — they emit an unbounded sequence
of acquisition frames at line rate (the paper's LCLS-II scenario, §1).
:class:`StreamWriter` compresses each frame into an FPRZ container and
frames them with a length prefix; :class:`StreamReader` yields the frames
back, each one independently decodable (a dropped connection costs at
most the trailing frame).

Stream layout::

    magic "FPRS" | version u8 | reserved 3 bytes
    frame*:  u32 container length | FPRZ container
    terminator: u32 0xFFFFFFFF (written by close(); absent after a crash,
                which readers tolerate by stopping at EOF)

Example::

    with StreamWriter(fh, codec="spspeed") as writer:
        for frame in acquisition:
            writer.write(frame)

    for frame in StreamReader(fh2):
        process(frame)
"""

from __future__ import annotations

import struct
from collections.abc import Iterator
from typing import BinaryIO

import numpy as np

from repro.api import compress, decompress
from repro.core.container import DEFAULT_CHECKSUM
from repro.errors import FormatError

MAGIC = b"FPRS"
VERSION = 1
_TERMINATOR = 0xFFFFFFFF


class StreamWriter:
    """Compress a sequence of arrays into a framed stream."""

    def __init__(
        self,
        sink: BinaryIO,
        *,
        codec: str | None = None,
        mode: str = "ratio",
        checksum: bool = DEFAULT_CHECKSUM,
        workers: int = 1,
    ) -> None:
        self._sink = sink
        self._codec = codec
        self._mode = mode
        self._checksum = checksum
        self._workers = workers
        self._frames = 0
        self._raw_bytes = 0
        self._compressed_bytes = 0
        self._closed = False
        sink.write(MAGIC + struct.pack("<B3x", VERSION))

    def write(self, frame: np.ndarray | bytes) -> int:
        """Compress and emit one frame; returns the compressed size."""
        if self._closed:
            raise ValueError("stream writer is closed")
        blob = compress(frame, self._codec, mode=self._mode,
                        checksum=self._checksum, workers=self._workers)
        if len(blob) >= _TERMINATOR:
            raise ValueError("frame too large for the stream framing")
        self._sink.write(struct.pack("<I", len(blob)))
        self._sink.write(blob)
        self._frames += 1
        raw = frame.nbytes if isinstance(frame, np.ndarray) else len(frame)
        self._raw_bytes += raw
        self._compressed_bytes += len(blob) + 4
        return len(blob)

    @property
    def frames_written(self) -> int:
        return self._frames

    @property
    def ratio(self) -> float:
        """Aggregate stream compression ratio so far."""
        return self._raw_bytes / self._compressed_bytes if self._compressed_bytes else 0.0

    def close(self) -> None:
        if not self._closed:
            self._sink.write(struct.pack("<I", _TERMINATOR))
            self._closed = True

    def __enter__(self) -> "StreamWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StreamReader:
    """Iterate the frames of a compressed stream."""

    def __init__(self, source: BinaryIO, *, workers: int = 1) -> None:
        header = source.read(8)
        if len(header) < 8 or header[:4] != MAGIC:
            raise FormatError("not an FPRS stream")
        if header[4] != VERSION:
            raise FormatError(f"unsupported stream version {header[4]}")
        self._source = source
        self._workers = workers

    def __iter__(self) -> Iterator[np.ndarray | bytes]:
        while True:
            prefix = self._source.read(4)
            if len(prefix) == 0:
                return  # crashed writer: stop cleanly at EOF
            if len(prefix) < 4:
                raise FormatError("truncated stream frame prefix")
            (length,) = struct.unpack("<I", prefix)
            if length == _TERMINATOR:
                return
            blob = self._source.read(length)
            if len(blob) < length:
                raise FormatError("truncated stream frame")
            yield decompress(blob, workers=self._workers)
