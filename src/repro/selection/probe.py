"""Per-chunk probe: features and closed-form size models for selection.

The probe answers one question per chunk — "how large would each fixed
pipeline's output be?" — without running any pipeline.  It computes the
DIFFMS transform (one subtract + zigzag, the shared first stage of every
fixed codec), derives leading-zero and leading-common-bits statistics
with the same backend-dispatched kernels the stages use, and feeds them
into one size model per pipeline family:

* **MPLG** (SPspeed/DPspeed) — near-exact: per-subchunk maxima give the
  packed widths directly (the magnitude-sign retry for ``clz == 0``
  subchunks is not modelled, a slight overestimate on incompressible
  data).
* **BIT + RZE** (SPratio) — the nonzero-byte count of the bit-transposed
  stream is exact (one OR-reduce over groups of eight words and a
  popcount); the recursive bitmap is estimated by letting every set byte
  dirty at most one bitmap byte per elimination level.
* **RAZE x RARE** (DPratio) — RAZE's own adaptive-``k`` cost model
  applied to the leading-zero histogram, scaled by the analogous RARE
  cost on the leading-common-bits histogram (an independence
  approximation; the FCM pass is not modelled — the policy's bias
  constants absorb both).

All statistics are computed on a row-stacked ``(n_chunks, n_words)``
grid, so probing a batch and probing one chunk run the same code path
and produce bit-identical features regardless of executor or batching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitpack import count_leading_zeros
from repro.core.codecs import Codec
from repro.stages._adaptive import eliminated_counts_rows

#: MPLG's subchunk granularity (bytes); must match the stage default.
_SUBCHUNK_BYTES = 512

_WORD_DTYPE = {32: np.dtype("<u4"), 64: np.dtype("<u8")}
#: (shift, mask) extracting the IEEE exponent field at each word width.
_EXPONENT_FIELD = {32: (23, 0xFF), 64: (52, 0x7FF)}

_HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")


@dataclass(frozen=True)
class WidthStats:
    """Probe statistics of one chunk at one word width."""

    word_bits: int
    n_words: int
    tail_len: int
    #: Shannon entropy (bits) of the IEEE exponent field at this width.
    exponent_entropy: float
    #: Fraction of words equal to their predecessor.
    repeated_fraction: float
    #: Mean leading-zero count of the zigzag deltas / word_bits; 1.0 means
    #: perfectly smooth (all deltas zero), 0.0 means every delta is wild.
    delta_smoothness: float
    #: ``lz_counts[k]`` = number of deltas with >= k leading zero bits
    #: (the suffix-sum histogram RAZE's adaptive split consumes).
    lz_counts: tuple[int, ...]
    #: The analogous suffix-sum histogram of leading-common-bits counts
    #: between consecutive deltas (RARE's measure).
    lcb_counts: tuple[int, ...]


@dataclass(frozen=True)
class ChunkProbe:
    """Probe result of one chunk: features plus modelled sizes."""

    n_bytes: int
    #: Per-word-width statistics (32 and/or 64, per the candidate set).
    stats: dict[int, WidthStats]
    #: Modelled compressed payload size in bytes per candidate codec name.
    modeled: dict[str, int]


def _popcount(words: np.ndarray) -> np.ndarray:
    if _HAVE_BITWISE_COUNT:
        return np.bitwise_count(words)
    by = words.view(np.uint8).reshape(words.shape + (words.dtype.itemsize,))
    return np.unpackbits(by, axis=-1).sum(axis=-1, dtype=np.uint32)


def _zigzag_deltas(words2d: np.ndarray, word_bits: int) -> np.ndarray:
    """Per-row DIFFMS transform: wraparound delta then zigzag.

    The zigzag map ``(d << 1) ^ (d >>_signed (w-1))`` is applied in
    place on the delta buffer — bit-identical to
    :func:`repro.bitpack.zigzag_encode` without its temporaries (this
    runs on the selector's hot path for every chunk).
    """
    diffs = np.empty_like(words2d)
    diffs[:, 0] = words2d[:, 0]
    np.subtract(words2d[:, 1:], words2d[:, :-1], out=diffs[:, 1:])
    signed = diffs.view(np.int32 if word_bits == 32 else np.int64)
    sign_fill = (signed >> (word_bits - 1)).view(diffs.dtype)
    np.left_shift(diffs, 1, out=diffs)
    np.bitwise_xor(diffs, sign_fill, out=diffs)
    return diffs


def _row_entropy(field2d: np.ndarray, n_symbols: int) -> np.ndarray:
    """Shannon entropy (bits) of each row of a small-alphabet grid."""
    n_rows, n = field2d.shape
    if n == 0:
        return np.zeros(n_rows)
    offset = np.arange(n_rows, dtype=np.int64)[:, None] * n_symbols
    flat = field2d.astype(np.int64) + offset
    hist = np.bincount(flat.reshape(-1), minlength=n_rows * n_symbols)
    hist = hist.reshape(n_rows, n_symbols)
    p = hist / n
    logp = np.zeros_like(p)
    np.log2(p, out=logp, where=p > 0)
    return -(p * logp).sum(axis=1)


def _model_mplg_rows(zz2d: np.ndarray, word_bits: int, tail_len: int) -> np.ndarray:
    """Modelled MPLG payload bytes per row (header + packed subchunks)."""
    n_rows, n_words = zz2d.shape
    step = _SUBCHUNK_BYTES * 8 // word_bits
    size = np.full(n_rows, 5 + tail_len, dtype=np.int64)
    n_full = n_words // step
    if n_full:
        body = zz2d[:, : n_full * step].reshape(n_rows, n_full, step)
        maxima = body.max(axis=2)
        clz = count_leading_zeros(maxima, word_bits).astype(np.int64)
        widths = word_bits - clz
        # step is a multiple of 8 words at both widths, so packed
        # subchunks are whole bytes: width * step / 8 exactly.
        size += n_full + (widths * (step // 8)).sum(axis=1)
    rem = n_words - n_full * step
    if rem:
        maxima = zz2d[:, n_full * step :].max(axis=1)
        clz = count_leading_zeros(maxima, word_bits).astype(np.int64)
        size += 1 + (word_bits - clz) * rem // 8 + 1
    return size


def _bitmap_cost(total_bytes: int, n_set: np.ndarray) -> np.ndarray:
    """Estimated size of RZE's recursively compressed nonzero bitmap.

    Each elimination level keeps the bitmap bytes that are not the
    repeating byte; every set byte of the level below can dirty at most
    one of them, which bounds the kept count from above.
    """
    level = (total_bytes + 7) // 8
    dirty = np.minimum(n_set, level).astype(np.int64)
    cost = np.full_like(dirty, 4)
    for _ in range(3):
        kept = np.minimum(dirty, level)
        cost += kept
        dirty = kept
        level = (level + 7) // 8
    return cost + level


def _model_bit_rze_rows(zz2d: np.ndarray, word_bits: int, tail_len: int) -> np.ndarray:
    """Modelled BIT+RZE payload bytes per row.

    The bit transpose turns bit ``b`` of eight consecutive words into one
    output byte, so the transposed stream's nonzero-byte count is the
    popcount of the OR over each group of eight words — exact, no
    transpose executed.
    """
    n_rows, n_words = zz2d.shape
    n_groups = n_words // 8
    rem_words = n_words - n_groups * 8
    base = 9 + tail_len + rem_words * (word_bits // 8)
    if n_groups == 0:
        return np.full(n_rows, base + n_words * (word_bits // 8), dtype=np.int64)
    # Pairwise tree OR: ~3x faster than ufunc.reduce over the last axis
    # of the (rows, groups, 8) view, with an identical result.
    v = zz2d[:, : n_groups * 8].reshape(-1, 8)
    a = v[:, 0::2] | v[:, 1::2]
    b = a[:, 0::2] | a[:, 1::2]
    masks = (b[:, 0] | b[:, 1]).reshape(n_rows, n_groups)
    n_nonzero = _popcount(masks).sum(axis=1, dtype=np.int64)
    total = n_groups * word_bits
    return base + n_nonzero + _bitmap_cost(total, n_nonzero)


def _adaptive_cost_bits(counts2d: np.ndarray, n: int, word_bits: int) -> np.ndarray:
    """Per-row minimum of RAZE/RARE's closed-form split cost (in bits)."""
    n_rows = len(counts2d)
    if n == 0:
        return np.zeros(n_rows, dtype=np.int64)
    ks = np.arange(1, word_bits + 1, dtype=np.int64)
    cost = n + (n - counts2d[:, 1:]) * ks + n * (word_bits - ks)
    return np.minimum(cost.min(axis=1), np.int64(n) * word_bits)


def _model_raze_rare_rows(
    lz_counts2d: np.ndarray,
    lcb_counts2d: np.ndarray,
    n_words: int,
    word_bits: int,
    tail_len: int,
) -> np.ndarray:
    """Modelled RAZE x RARE payload bytes per row (independence approx)."""
    if n_words == 0:
        return np.full(len(lz_counts2d), 8 + tail_len, dtype=np.int64)
    raze_bits = _adaptive_cost_bits(lz_counts2d, n_words, word_bits)
    rare_bits = _adaptive_cost_bits(lcb_counts2d, n_words, word_bits)
    factor = rare_bits / (n_words * word_bits)
    return (8 + tail_len + (raze_bits / 8) * factor).astype(np.int64)


def _probe_group(
    rows: np.ndarray,
    length: int,
    candidates: tuple[Codec, ...],
    with_stats: bool = True,
) -> list[ChunkProbe]:
    """Probe a group of equal-length chunks stacked as uint8 rows."""
    n_rows = len(rows)
    widths = sorted({codec.word_bits for codec in candidates})
    stats_by_width: dict[int, list[WidthStats]] = {}
    models: dict[str, np.ndarray] = {}
    for wb in widths:
        itemsize = wb // 8
        n_words = length // itemsize
        tail_len = length - n_words * itemsize
        # The leading-zero / leading-common-bits histograms feed both the
        # RAZE x RARE model and the descriptive stats; everything else
        # (exponent entropy, repeat fraction) is stats-only and skipped on
        # the selector's hot path — the modelled sizes are identical.
        needs_counts = with_stats or any(
            c.word_bits == wb and c.mode != "speed" and wb == 64
            for c in candidates
        )
        if n_words:
            words = np.ascontiguousarray(rows[:, : n_words * itemsize])
            words = words.view(_WORD_DTYPE[wb]).reshape(n_rows, n_words)
            zz = _zigzag_deltas(words, wb)
            if needs_counts:
                clz = count_leading_zeros(zz, wb)
                prev = np.empty_like(zz)
                prev[:, 0] = 0
                prev[:, 1:] = zz[:, :-1]
                lcb = count_leading_zeros(zz ^ prev, wb)
                lz_counts = eliminated_counts_rows(clz, wb)
                lcb_counts = eliminated_counts_rows(lcb, wb)
            if with_stats:
                shift, mask = _EXPONENT_FIELD[wb]
                exponents = (words >> np.uint8(shift)).astype(np.int64) & mask
                entropy = _row_entropy(exponents, mask + 1)
                repeated = (words[:, 1:] == words[:, :-1]).sum(axis=1) / max(
                    n_words - 1, 1
                )
                smooth = clz.mean(axis=1) / wb
        else:
            zz = np.zeros((n_rows, 0), dtype=_WORD_DTYPE[wb])
            lz_counts = np.zeros((n_rows, wb + 1), dtype=np.int64)
            lcb_counts = np.zeros((n_rows, wb + 1), dtype=np.int64)
            entropy = np.zeros(n_rows)
            repeated = np.zeros(n_rows)
            smooth = np.zeros(n_rows)
        if with_stats:
            stats_by_width[wb] = [
                WidthStats(
                    word_bits=wb,
                    n_words=n_words,
                    tail_len=tail_len,
                    exponent_entropy=float(entropy[r]),
                    repeated_fraction=float(repeated[r]),
                    delta_smoothness=float(smooth[r]),
                    lz_counts=tuple(int(v) for v in lz_counts[r]),
                    lcb_counts=tuple(int(v) for v in lcb_counts[r]),
                )
                for r in range(n_rows)
            ]
        for codec in candidates:
            if codec.word_bits != wb:
                continue
            if codec.mode == "speed":
                models[codec.name] = _model_mplg_rows(zz, wb, tail_len)
            elif wb == 32:
                models[codec.name] = _model_bit_rze_rows(zz, wb, tail_len)
            else:
                models[codec.name] = _model_raze_rare_rows(
                    lz_counts, lcb_counts, n_words, wb, tail_len
                )
    return [
        ChunkProbe(
            n_bytes=length,
            stats=(
                {wb: stats_by_width[wb][r] for wb in widths}
                if with_stats
                else {}
            ),
            modeled={name: int(models[name][r]) for name in models},
        )
        for r in range(n_rows)
    ]


def probe_chunks(
    chunks,
    candidates: tuple[Codec, ...],
    *,
    with_stats: bool = True,
) -> list[ChunkProbe]:
    """Probe a batch of chunks against a candidate codec set.

    Equal-length chunks are row-stacked so the histogram and model math
    runs once per group through the batched kernels; ragged chunks fall
    back to single-row groups.  Results are identical either way.

    ``with_stats=False`` skips the descriptive :class:`WidthStats`
    features (``probe.stats`` comes back empty) and computes only what
    the size models consume — the modelled sizes are bit-identical to
    the full probe's.  This is the selector's hot path: probing must
    stay a small fraction of the winning pipeline's encode cost.
    """
    groups: dict[int, list[int]] = {}
    for i, chunk in enumerate(chunks):
        groups.setdefault(len(chunk), []).append(i)
    out: list[ChunkProbe | None] = [None] * len(chunks)
    for length, indices in groups.items():
        rows = np.empty((len(indices), length), dtype=np.uint8)
        for r, i in enumerate(indices):
            rows[r] = np.frombuffer(chunks[i], dtype=np.uint8)
        probes = _probe_group(rows, length, candidates, with_stats)
        for r, i in enumerate(indices):
            out[i] = probes[r]
    return out


def probe_chunk(chunk, candidates: tuple[Codec, ...]) -> ChunkProbe:
    """Probe one chunk (same code path as the batched probe)."""
    return probe_chunks([chunk], candidates)[0]
