"""Selection policies: turn probe results into a per-chunk codec choice.

The policy layer is deliberately tiny and pluggable.  A policy sees one
:class:`~repro.selection.probe.ChunkProbe` plus the candidate codec set
and returns the winner; the engine handles everything else (grouping,
batching, the v4 codec table).  Two policies ship:

* :class:`HeuristicPolicy` — argmin of the modelled sizes, each scaled
  by a per-codec bias multiplier.  The biases absorb what the closed
  forms do not model (MPLG's magnitude-sign retry, RZE's bitmap detail,
  DPratio's FCM pass) and encode the speed/ratio preference: a bias
  below 1.0 favours that codec.  Ties break toward the lower codec id,
  so selection is deterministic.
* :class:`TrainedPolicy` — the same rule with biases loaded from a JSON
  thresholds file fitted offline against the bundled corpus by
  ``scripts/fit_selector.py`` (the committed fit lives next to this
  module).  ``--selector trained`` on the CLI, or any path to a
  compatible JSON file.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.codecs import Codec
from repro.errors import ReproError
from repro.selection.probe import ChunkProbe

#: Default bias multipliers of the heuristic policy.  Calibrated against
#: actual per-chunk encoded sizes on the bundled corpus at scale 1.0
#: (``scripts/fit_selector.py --report``): the DPratio model cannot see
#: the restart-framed FCM pass from a single chunk and underestimates it
#: badly on FCM-hostile data, so its modelled size is inflated; the
#: BIT+RZE model slightly overestimates the bitmap's multi-level
#: savings, so SPratio's is discounted; the MPLG models are near-exact
#: (their only gap is the magnitude-sign retry, which can only shrink a
#: subchunk).
DEFAULT_BIAS = {
    "spspeed": 0.999,
    "spratio": 0.804,
    "dpspeed": 0.997,
    "dpratio": 1.273,
}

#: Committed thresholds fitted offline (``--selector trained``).
TRAINED_PATH = Path(__file__).with_name("trained_thresholds.json")


class SelectionPolicy:
    """Base policy: pick a codec for one probed chunk."""

    name = "base"

    def choose(self, probe: ChunkProbe, candidates: tuple[Codec, ...]) -> Codec:
        raise NotImplementedError


class HeuristicPolicy(SelectionPolicy):
    """Argmin of bias-scaled modelled sizes, ties toward lower codec id."""

    name = "heuristic"

    def __init__(self, bias: dict[str, float] | None = None) -> None:
        self.bias = dict(DEFAULT_BIAS)
        if bias:
            self.bias.update(bias)

    def choose(self, probe: ChunkProbe, candidates: tuple[Codec, ...]) -> Codec:
        best: Codec | None = None
        best_score = None
        for codec in sorted(candidates, key=lambda c: c.codec_id):
            modeled = probe.modeled.get(codec.name)
            if modeled is None:
                continue
            score = modeled * self.bias.get(codec.name, 1.0)
            if best_score is None or score < best_score:
                best, best_score = codec, score
        if best is None:
            # No model produced a size (e.g. an empty candidate set slice);
            # fall back to the lowest-id candidate for determinism.
            best = min(candidates, key=lambda c: c.codec_id)
        return best


class TrainedPolicy(HeuristicPolicy):
    """Heuristic rule with biases loaded from a fitted thresholds file."""

    name = "trained"

    def __init__(self, path: str | Path | None = None) -> None:
        path = Path(path) if path is not None else TRAINED_PATH
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise ReproError(
                f"cannot load selector thresholds from {path}: {exc}"
            ) from exc
        if not isinstance(payload, dict) or "bias" not in payload:
            raise ReproError(
                f"selector thresholds file {path} must be a JSON object "
                f"with a 'bias' mapping"
            )
        bias = payload["bias"]
        if not isinstance(bias, dict) or not all(
            isinstance(v, (int, float)) for v in bias.values()
        ):
            raise ReproError(
                f"'bias' in {path} must map codec names to numbers"
            )
        super().__init__(bias={str(k): float(v) for k, v in bias.items()})
        self.path = path


def get_policy(spec: str | SelectionPolicy | None) -> SelectionPolicy:
    """Resolve a selector spec: a policy, ``heuristic``/``trained``, or a
    path to a thresholds JSON file."""
    if spec is None:
        return HeuristicPolicy()
    if isinstance(spec, SelectionPolicy):
        return spec
    if spec == "heuristic":
        return HeuristicPolicy()
    if spec == "trained":
        return TrainedPolicy()
    if str(spec).endswith(".json"):
        return TrainedPolicy(spec)
    raise ReproError(
        f"unknown selector {spec!r}; use 'heuristic', 'trained', or a "
        f"path to a thresholds .json file"
    )
