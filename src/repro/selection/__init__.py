"""Adaptive per-chunk codec selection (the ``auto`` codec).

The paper's four pipelines are fixed: one dtype, one speed/ratio trade.
Real archives mix regimes — smooth fields next to noisy ones, runs of
zeros next to turbulence — and codec rankings flip across domains
(FCBench), so no single global codec wins a corpus.  This subsystem adds
the adaptive layer on top of the fixed pipelines:

* :mod:`repro.selection.probe` — a cheap per-chunk feature extractor
  (exponent entropy, leading-zero / leading-common-bits histograms,
  first-delta smoothness, repeated-value fraction) plus closed-form size
  models for every fixed pipeline, built on the same CLZ /
  ``eliminated_counts_rows`` kernels the stages use, so it dispatches
  through the backend registry and costs a small fraction of an encode.
* :mod:`repro.selection.policy` — the decision layer: the heuristic
  policy routes each chunk to the candidate with the smallest (biased)
  modelled size; the trained policy loads bias thresholds fitted offline
  against the bundled corpus (``scripts/fit_selector.py``).

The engine entry point is the registered ``auto`` codec
(:data:`repro.core.codecs.AUTO`): its encode path probes every chunk,
consults the policy, groups same-decision chunks so the columnar
``encode_batch`` kernels still engage, and writes a container v4 with a
per-chunk codec-id table.  Decoding needs none of this module — the
table alone resolves each chunk's pipeline.
"""

from repro.selection.policy import (
    HeuristicPolicy,
    SelectionPolicy,
    TrainedPolicy,
    get_policy,
)
from repro.selection.probe import ChunkProbe, probe_chunk, probe_chunks

__all__ = [
    "ChunkProbe",
    "HeuristicPolicy",
    "SelectionPolicy",
    "TrainedPolicy",
    "get_policy",
    "probe_chunk",
    "probe_chunks",
]
