"""SPDP: synthesized single/double-precision compressor (Claggett et al., DCC'18).

SPDP "performs difference coding, byte shuffling, and Lempel-Ziv coding"
(paper §2.1).  The first two transformations are implemented exactly
(lag-``word`` byte differences so each byte position differences against
its counterpart in the previous value, then a byte shuffle grouping
positions); the final stage is our own LZ77 coder
(:mod:`repro.baselines.lz77`) — like SPDP's native LZsp stage it carries
*no* entropy coder, which matters: backing it with DEFLATE would bolt a
Huffman stage onto SPDP that the published algorithm does not have and
inflate its ratios.  The paper benchmarks SPDP at multiple levels; ours
maps levels to the LZ match-search effort.

Like the original there is no GPU implementation: SPDP's LZ stage "is
difficult to parallelize efficiently, especially for GPUs".
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines import BaselineCompressor
from repro.baselines.lz77 import LZ4Like
from repro.bitpack import byte_shuffle, byte_unshuffle
from repro.errors import CorruptDataError


class SPDP(BaselineCompressor):
    """Lag-word byte differencing + byte shuffle + DEFLATE."""

    device = "CPU"
    datatype = "FP32 & FP64"

    def __init__(self, dtype=np.float32, *, level: int = 5) -> None:
        dtype = np.dtype(dtype)
        if dtype.itemsize not in (4, 8):
            raise ValueError("SPDP supports float32/float64")
        self.word_bytes = dtype.itemsize
        self.level = level
        suffix = "best" if level >= 9 else ("fast" if level <= 1 else str(level))
        self.name = f"SPDP-{suffix}"
        # Higher levels search harder (larger hash table, no skipping).
        self._lz = LZ4Like(
            hash_log2=18 if level >= 9 else 15,
            window=65535,
            search_effort=12 if level >= 9 else 2,
        )

    def _difference(self, data: bytes) -> bytes:
        buf = np.frombuffer(data, dtype=np.uint8)
        prev = np.zeros_like(buf)
        lag = self.word_bytes
        prev[lag:] = buf[:-lag]
        return (buf - prev).tobytes()

    def _undifference(self, data: bytes) -> bytes:
        diffs = np.frombuffer(data, dtype=np.uint8)
        lag = self.word_bytes
        out = diffs.copy()
        for lane in range(lag):
            out[lane::lag] = np.cumsum(diffs[lane::lag], dtype=np.uint8)
        return out.tobytes()

    def compress(self, data: bytes) -> bytes:
        staged = byte_shuffle(self._difference(data), self.word_bytes)
        return struct.pack("<I", len(data)) + self._lz.compress(staged)

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 4:
            raise CorruptDataError("SPDP payload shorter than its header")
        (n,) = struct.unpack_from("<I", blob, 0)
        staged = self._lz.decompress(blob[4:])
        if len(staged) != n:
            raise CorruptDataError("SPDP length mismatch")
        return self._undifference(byte_unshuffle(staged, self.word_bytes))
