"""FPzip-style predictive compressor (Lindstrom & Isenburg, TVCG'06).

FPzip "exploits floating-point data coherency to predict values in the
input, computes the residuals, stores the data as integers, and uses a
fast entropy encoder" (paper §2.1).  This implementation follows that
recipe for 1-D streams:

1. map each IEEE word to a *totally ordered* integer (flip all bits of
   negative values, set the sign bit of positives) so numeric closeness
   becomes integer closeness;
2. predict each value with the Lorenzo predictor of the input's true
   dimensionality (the paper supplies the dimensions to FPzip for all
   runs, §4) — implemented as separable modular differences along each
   grid axis, whose inverse is a chain of modular cumulative sums — and
   zigzag the integer residual;
3. entropy-code the residual *bit-length class* of every value with the
   rANS coder and store each residual's remaining bits (below the
   implicit leading 1) verbatim.

Step 3 is a Golomb-style split with an adaptive arithmetic-coded prefix —
the same design point as FPzip's range coder, and like the original it
delivers the best single-precision ratios of the CPU baselines at a
correspondingly low throughput (paper: SPspeed is 75x faster).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines import BaselineCompressor
from repro.baselines.rans import ANS
from repro.bitpack import (
    pack_words,
    packed_size_bytes,
    unpack_words,
    words_from_bytes,
    words_to_bytes,
)
from repro.bitpack.zigzag import zigzag_decode, zigzag_encode
from repro.errors import CorruptDataError


def _to_ordered(words: np.ndarray, word_bits: int) -> np.ndarray:
    sign = np.uint64(1) << np.uint64(word_bits - 1)
    sign = words.dtype.type(sign)
    negative = (words & sign) != 0
    return np.where(negative, ~words, words | sign)


def _from_ordered(ordered: np.ndarray, word_bits: int) -> np.ndarray:
    sign = ordered.dtype.type(np.uint64(1) << np.uint64(word_bits - 1))
    positive = (ordered & sign) != 0
    return np.where(positive, ordered & ~sign, ~ordered)


def _bit_lengths(values: np.ndarray, word_bits: int) -> np.ndarray:
    from repro.bitpack import count_leading_zeros

    return (word_bits - count_leading_zeros(values, word_bits).astype(np.int64)).astype(np.uint8)


class FPzip(BaselineCompressor):
    """Predict -> residual -> entropy-coded bit-length classes."""

    name = "FPzip"
    device = "CPU"
    datatype = "FP32 & FP64"

    def __init__(self, dtype=np.float32) -> None:
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("FPzip supports float32/float64")
        self.word_bits = dtype.itemsize * 8
        self._ans = ANS()
        self._shape: tuple[int, ...] | None = None

    def set_dimensions(self, shape: tuple[int, ...]) -> None:
        if len(shape) > 255:
            raise ValueError("implausible dimensionality")
        self._shape = tuple(int(d) for d in shape)

    def _effective_shape(self, n_words: int) -> tuple[int, ...]:
        shape = self._shape
        if shape is None:
            return (n_words,)
        total = 1
        for dim in shape:
            total *= dim
        return shape if total == n_words else (n_words,)

    @staticmethod
    def _lorenzo_forward(ordered: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        arr = ordered.reshape(shape).copy()
        for axis in range(arr.ndim):
            lead = [slice(None)] * arr.ndim
            lag = [slice(None)] * arr.ndim
            lead[axis] = slice(1, None)
            lag[axis] = slice(None, -1)
            arr[tuple(lead)] -= arr[tuple(lag)].copy()
        return arr.reshape(-1)

    @staticmethod
    def _lorenzo_inverse(residuals: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        arr = residuals.reshape(shape)
        for axis in range(arr.ndim - 1, -1, -1):
            arr = np.cumsum(arr, axis=axis, dtype=arr.dtype)
        return arr.reshape(-1)

    def compress(self, data: bytes) -> bytes:
        wb = self.word_bits
        words, tail = words_from_bytes(data, wb)
        shape = self._effective_shape(len(words))
        ordered = _to_ordered(words, wb)
        residuals = zigzag_encode(self._lorenzo_forward(ordered, shape), wb)
        classes = _bit_lengths(residuals, wb)
        class_blob = self._ans.compress(classes.tobytes())
        mantissa = self._pack_mantissas(residuals, classes)
        shape_block = struct.pack("<B", len(shape)) + b"".join(
            struct.pack("<I", dim) for dim in shape
        )
        return (
            struct.pack("<IBI", len(words), len(tail), len(class_blob))
            + shape_block
            + tail
            + class_blob
            + mantissa
        )

    @staticmethod
    def _class_groups(classes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Deterministic grouping of value indices by kept-bit width.

        Returns ``(order, widths, counts)``: a stable permutation sorting
        the values by their kept-bit count, plus the distinct nonzero
        widths and how many values carry each.  Both sides derive the
        identical grouping from the class stream alone, so the grouping
        needs no bytes on the wire.
        """
        kept = np.maximum(classes.astype(np.int64) - 1, 0)  # drop the implicit 1
        order = np.argsort(kept, kind="stable")
        widths, counts = np.unique(kept, return_counts=True)
        nonzero = widths > 0
        # Values with zero kept bits contribute no mantissa stream; skip
        # their leading run of the sorted order.
        skip = int(counts[~nonzero].sum())
        return order[skip:], widths[nonzero], counts[nonzero]

    def _pack_mantissas(self, residuals: np.ndarray, classes: np.ndarray) -> bytes:
        """Kept mantissa bits as per-width ``pack_words`` streams.

        Values are grouped by kept-bit width (stable order within a
        group) and each group is packed at its fixed width with the
        word-lane kernels — fixed-width groups are what the kernels
        need, and the grouping is recomputed from the class stream on
        decode.  Replaces the historical one-byte-per-bit
        ``np.unpackbits`` matrix.
        """
        wb = self.word_bits
        if len(residuals) == 0:
            return b""
        order, widths, counts = self._class_groups(classes)
        parts = []
        pos = 0
        for width, count in zip(widths, counts):
            sel = order[pos : pos + count]
            pos += count
            mask = residuals.dtype.type((1 << int(width)) - 1)
            parts.append(pack_words(residuals[sel] & mask, int(width), wb))
        return b"".join(parts)

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 10:
            raise CorruptDataError("FPzip payload shorter than its header")
        n, tail_len, class_len = struct.unpack_from("<IBI", blob, 0)
        pos = 9
        (ndim,) = struct.unpack_from("<B", blob, pos)
        pos += 1
        if pos + 4 * ndim > len(blob):
            raise CorruptDataError("FPzip truncated shape block")
        shape = struct.unpack_from(f"<{ndim}I", blob, pos)
        pos += 4 * ndim
        total = 1
        for dim in shape:
            total *= dim
        if total != n:
            raise CorruptDataError("FPzip shape does not cover the data")
        tail = blob[pos : pos + tail_len]
        pos += tail_len
        classes = np.frombuffer(
            self._ans.decompress(blob[pos : pos + class_len]), dtype=np.uint8
        )
        pos += class_len
        if len(classes) != n:
            raise CorruptDataError("FPzip class stream length mismatch")
        wb = self.word_bits
        word_bytes = wb // 8
        dtype = np.dtype(f"<u{word_bytes}")
        order, widths, counts = self._class_groups(classes)
        residuals = np.zeros(n, dtype=dtype)
        group_pos = 0
        for width, count in zip(widths, counts):
            need = packed_size_bytes(int(count), int(width))
            if len(blob) - pos < need:
                raise CorruptDataError("FPzip mantissa stream truncated")
            values = unpack_words(
                np.frombuffer(blob, dtype=np.uint8, count=need, offset=pos),
                int(count), int(width), wb,
            )
            residuals[order[group_pos : group_pos + count]] = values
            group_pos += count
            pos += need
        # Re-insert the implicit leading 1 for nonzero classes.
        nonzero = classes > 0
        residuals[nonzero] |= dtype.type(1) << (classes[nonzero] - 1).astype(dtype)
        diffs = zigzag_decode(residuals, wb)
        ordered = self._lorenzo_inverse(diffs, shape)
        return words_to_bytes(_from_ordered(ordered, wb), tail)
