"""Stdlib-backed general-purpose baselines: Gzip, Deflate, Gdeflate, Bzip2, Zstd.

``zlib`` *is* the reference DEFLATE implementation, and Gzip is DEFLATE
with a different wrapper, so these rows are the real algorithms.
nvCOMP's Gdeflate is "a novel algorithm based on Deflate with more
efficient GPU decompression" (paper §2.2) — format-compatible output
with a GPU-friendly framing; we model it as DEFLATE over independent
64 KiB pages (the framing that enables parallel decompression).

Zstandard has no offline implementation available, so it is emulated:
the fast mode by low-level DEFLATE and the best mode by LZMA (the
closest available match to zstd-19's LZ77+entropy design point and
ratio regime).  The paper notes the CPU and GPU Zstandard codes
"originate from separate sources and are incompatible"; our two
variants deliberately use different container magics to preserve that
property.
"""

from __future__ import annotations

import bz2
import lzma
import struct
import zlib

from repro.baselines import BaselineCompressor
from repro.errors import CorruptDataError


class _Zlib(BaselineCompressor):
    datatype = "General"

    def __init__(self, dtype=None, *, level: int = 6, name: str = "Deflate",
                 device: str = "GPU") -> None:
        self.level = level
        self.name = name
        self.device = device

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, blob: bytes) -> bytes:
        try:
            return zlib.decompress(blob)
        except zlib.error as exc:
            raise CorruptDataError(f"{self.name}: {exc}") from exc


class Gdeflate(BaselineCompressor):
    """DEFLATE over independent 64 KiB pages (GPU-parallel framing)."""

    name = "Gdeflate"
    device = "GPU"
    datatype = "General"

    PAGE = 65536

    def __init__(self, dtype=None, *, level: int = 6) -> None:
        self.level = level

    def compress(self, data: bytes) -> bytes:
        pages = [
            zlib.compress(data[start : start + self.PAGE], self.level)
            for start in range(0, len(data), self.PAGE)
        ] or []
        header = struct.pack("<I", len(pages)) + b"".join(
            struct.pack("<I", len(p)) for p in pages
        )
        return header + b"".join(pages)

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 4:
            raise CorruptDataError("Gdeflate payload shorter than its header")
        (n_pages,) = struct.unpack_from("<I", blob, 0)
        pos = 4
        sizes = []
        for _ in range(n_pages):
            if pos + 4 > len(blob):
                raise CorruptDataError("Gdeflate truncated page table")
            (size,) = struct.unpack_from("<I", blob, pos)
            sizes.append(size)
            pos += 4
        out = []
        for size in sizes:
            try:
                out.append(zlib.decompress(blob[pos : pos + size]))
            except zlib.error as exc:
                raise CorruptDataError(f"Gdeflate: {exc}") from exc
            pos += size
        if pos != len(blob):
            raise CorruptDataError("Gdeflate trailing garbage")
        return b"".join(out)


class Bzip2(BaselineCompressor):
    datatype = "General"
    device = "CPU"

    def __init__(self, dtype=None, *, level: int = 9) -> None:
        self.level = level
        self.name = "Bzip2-best" if level >= 9 else "Bzip2-fast"

    def compress(self, data: bytes) -> bytes:
        return bz2.compress(data, self.level)

    def decompress(self, blob: bytes) -> bytes:
        try:
            return bz2.decompress(blob)
        except OSError as exc:
            raise CorruptDataError(f"{self.name}: {exc}") from exc


class ZstdCPU(BaselineCompressor):
    """CPU Zstandard emulation (lzbench row): DEFLATE-fast / LZMA-best."""

    device = "CPU"
    datatype = "General"

    _MAGIC = b"ZSc"

    def __init__(self, dtype=None, *, best: bool = False) -> None:
        self.best = best
        self.name = "ZSTD-CPU-best" if best else "ZSTD-CPU-fast"

    def compress(self, data: bytes) -> bytes:
        if self.best:
            body = lzma.compress(data, preset=4)
        else:
            body = zlib.compress(data, 1)
        return self._MAGIC + body

    def decompress(self, blob: bytes) -> bytes:
        if blob[:3] != self._MAGIC:
            raise CorruptDataError("not a ZSTD-CPU payload (incompatible source)")
        try:
            if self.best:
                return lzma.decompress(blob[3:])
            return zlib.decompress(blob[3:])
        except (lzma.LZMAError, zlib.error) as exc:
            raise CorruptDataError(f"{self.name}: {exc}") from exc


class ZstdGPU(BaselineCompressor):
    """nvCOMP Zstandard emulation — incompatible with the CPU variant."""

    device = "GPU"
    datatype = "General"
    name = "ZSTD-GPU"

    _MAGIC = b"ZSg"

    def __init__(self, dtype=None) -> None:
        pass

    def compress(self, data: bytes) -> bytes:
        return self._MAGIC + zlib.compress(data, 4)

    def decompress(self, blob: bytes) -> bytes:
        if blob[:3] != self._MAGIC:
            raise CorruptDataError("not a ZSTD-GPU payload (incompatible source)")
        try:
            return zlib.decompress(blob[3:])
        except zlib.error as exc:
            raise CorruptDataError(f"{self.name}: {exc}") from exc


def gzip_fast(dtype=None) -> _Zlib:
    return _Zlib(level=1, name="Gzip-fast", device="CPU")


def gzip_best(dtype=None) -> _Zlib:
    return _Zlib(level=9, name="Gzip-best", device="CPU")


def deflate(dtype=None) -> _Zlib:
    return _Zlib(level=6, name="Deflate", device="GPU")
