"""ZFP-style reversible block compressor (Lindstrom, TVCG'14).

ZFP partitions arrays into small blocks (4^d values), decorrelates each
block with an integer transform, and codes the transformed coefficients
by descending bit plane; its CPU library offers a fully lossless
("reversible") mode, which is what the paper benchmarks.

Our 1-D structural approximation keeps the block architecture and
reversible integer path: IEEE words are mapped to totally ordered
integers, each 4-value block is decorrelated with an in-block difference
transform (reversible in modular arithmetic), zigzagged, and stored as a
per-block embedded code — a 1-byte dominant-bit-plane header followed by
the block packed at exactly that many bit planes.  The final entropy
stage of real ZFP is omitted; its effect on these inputs is small
compared to the transform itself.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines import BaselineCompressor
from repro.baselines.fpzip import _from_ordered, _to_ordered
from repro.bitpack import (
    count_leading_zeros,
    pack_words,
    packed_size_bytes,
    unpack_words,
    words_from_bytes,
    words_to_bytes,
)
from repro.bitpack.zigzag import zigzag_decode, zigzag_encode
from repro.errors import CorruptDataError

BLOCK = 4


class ZFP(BaselineCompressor):
    """Block transform + per-block bit-plane-width coding (lossless)."""

    name = "ZFP"
    device = "CPU"
    datatype = "FP32 & FP64"

    def __init__(self, dtype=np.float32) -> None:
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("ZFP supports float32/float64")
        self.word_bits = dtype.itemsize * 8

    def _decorrelate(self, ordered: np.ndarray) -> np.ndarray:
        # Neighbour differences on the ordered integers (modular, hence
        # reversible); the first element keeps its absolute value.  Unlike
        # real ZFP the predictor runs across block boundaries — 1-D blocks
        # of 4 would otherwise each pay for one full-magnitude base.
        out = ordered.copy()
        out[1:] -= ordered[:-1]
        return out

    def _recorrelate(self, coeffs: np.ndarray) -> np.ndarray:
        return np.cumsum(coeffs, dtype=coeffs.dtype)

    def compress(self, data: bytes) -> bytes:
        wb = self.word_bits
        words, tail = words_from_bytes(data, wb)
        ordered = _to_ordered(words, wb)
        coeffs = self._decorrelate(ordered)
        zz = zigzag_encode(coeffs, wb)
        n = len(zz)
        n_blocks = (n + BLOCK - 1) // BLOCK
        padded = np.zeros(n_blocks * BLOCK, dtype=zz.dtype)
        padded[:n] = zz
        rows = padded.reshape(n_blocks, BLOCK)
        widths = (
            wb - count_leading_zeros(rows.max(axis=1), wb).astype(np.int64)
        ).astype(np.uint8) if n_blocks else np.zeros(0, dtype=np.uint8)
        parts = [struct.pack("<IB", len(words), len(tail)), tail, widths.tobytes()]
        # Pack all blocks of equal width together (vectorised per group).
        for width in np.unique(widths):
            group = rows[widths == width].reshape(-1)
            parts.append(pack_words(group, int(width), wb))
        return b"".join(parts)

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 5:
            raise CorruptDataError("ZFP payload shorter than its header")
        n, tail_len = struct.unpack_from("<IB", blob, 0)
        pos = 5
        tail = blob[pos : pos + tail_len]
        pos += tail_len
        wb = self.word_bits
        dtype = np.dtype(f"<u{wb // 8}")
        n_blocks = (n + BLOCK - 1) // BLOCK
        widths = np.frombuffer(blob, dtype=np.uint8, count=n_blocks, offset=pos)
        pos += n_blocks
        if n_blocks and widths.max() > wb:
            raise CorruptDataError("ZFP width exceeds word size")
        rows = np.zeros((n_blocks, BLOCK), dtype=dtype)
        for width in np.unique(widths):
            idx = np.nonzero(widths == width)[0]
            count = len(idx) * BLOCK
            size = packed_size_bytes(count, int(width))
            rows[idx] = unpack_words(
                blob[pos : pos + size], count, int(width), wb
            ).reshape(len(idx), BLOCK)
            pos += size
        if pos != len(blob):
            raise CorruptDataError("ZFP trailing garbage")
        zz = rows.reshape(-1)[:n]
        coeffs = zigzag_decode(zz, wb)
        ordered = self._recorrelate(coeffs)
        return words_to_bytes(_from_ordered(ordered, wb), tail)
