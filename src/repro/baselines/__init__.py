"""The 18 comparison compressors of the paper's Table 1, reimplemented.

Every baseline implements :class:`BaselineCompressor`: a lossless
``compress(bytes) -> bytes`` / ``decompress(bytes) -> bytes`` pair plus
the Table 1 metadata (device, datatype, version, source).  Floating-point
baselines take the element dtype at construction; general-purpose ones
ignore it.

Faithfulness levels (details in each module's docstring and DESIGN.md):

* *algorithmic reimplementations* — FPC, pFPC, GFC, MPC, ndzip, Bitcomp,
  Cascaded, ANS (rANS), LZ4/Snappy: the published algorithm, from scratch.
* *structural approximations* — SPDP, FPzip, ZFP: the published transform
  chain with a simplified final entropy stage.
* *stdlib-backed* — Gzip, Deflate, Gdeflate, Bzip2 (zlib/bz2 are the
  reference implementations of those formats); Zstandard is emulated
  (no zstd offline), with the CPU and GPU variants deliberately
  incompatible, as the paper notes about the real pair.

:func:`baseline_registry` returns the Table 1 inventory;
:func:`competitors_for` selects the per-figure comparison sets.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np


class BaselineCompressor(ABC):
    """A lossless byte-level compressor with Table 1 metadata."""

    #: display name, e.g. ``"FPC"`` or ``"Bitcomp-i0"``
    name: str = "baseline"
    #: ``"CPU"``, ``"GPU"``, or ``"CPU+GPU"``
    device: str = "CPU"
    #: Table 1 datatype column: ``"FP32 & FP64"``, ``"FP64"``, ``"General"``
    datatype: str = "General"

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data``; must be invertible by :meth:`decompress`."""

    @abstractmethod
    def decompress(self, blob: bytes) -> bytes:
        """Exact inverse of :meth:`compress`."""

    def set_dimensions(self, shape: tuple[int, ...]) -> None:
        """Receive the input's grid shape before compression.

        The paper supplies the true dimensionality to the baselines that
        require it ("MPC requires the tuple size of the input, and FPzip,
        ZFP, and Ndzip need the dimensions ... We provided this
        information for all runs", §4).  Dimension-aware baselines
        override this; everything else — including the paper's own four
        codecs, which deliberately need no dimensions — ignores it.
        """

    def compress_array(self, array: np.ndarray) -> bytes:
        return self.compress(np.ascontiguousarray(array).tobytes())

    def roundtrip_ratio(self, data: bytes) -> float:
        """Convenience: compression ratio on ``data`` (validates losslessness)."""
        blob = self.compress(data)
        if self.decompress(blob) != data:
            raise AssertionError(f"{self.name}: lossy round trip")
        return len(data) / len(blob) if blob else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


@dataclass(frozen=True)
class BaselineSpec:
    """One Table 1 row: metadata plus a constructor."""

    name: str
    device: str
    datatype: str
    version: str
    source: str
    factory: Callable[[np.dtype], BaselineCompressor]

    def build(self, dtype: np.dtype) -> BaselineCompressor:
        return self.factory(np.dtype(dtype))


def baseline_registry() -> list[BaselineSpec]:
    """The paper's Table 1 inventory (18 compressors + variants)."""
    from repro.baselines.table1 import build_registry

    return build_registry()


def competitors_for(dtype: np.dtype, device_kind: str) -> list[BaselineCompressor]:
    """Baselines that appear in a figure for ``dtype`` on ``device_kind``.

    ``device_kind`` is ``"gpu"`` or ``"cpu"``; FP64-only codecs are
    excluded from FP32 figures, exactly as in the paper.
    """
    from repro.baselines.table1 import build_competitors

    return build_competitors(np.dtype(dtype), device_kind)


__all__ = [
    "BaselineCompressor",
    "BaselineSpec",
    "baseline_registry",
    "competitors_for",
]
