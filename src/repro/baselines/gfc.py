"""GFC: GPU floating-point compression (O'Neil & Burtscher, GPGPU'11).

GFC "computes the difference sequence, negates any negative differences,
and encodes the sign bit together with a 3-bit count of the leading zero
bytes in a nibble before removing those leading zero bytes"; for
parallelism "the difference sequence is computed using values that
appear at least 32 elements earlier in the input" (paper §2.1).

This implementation is fully vectorised: lag-32 differences, per-value
magnitude/sign split, nibble headers packed two per byte, and residual
bytes gathered with a mask (the serial equivalent of the warp's prefix
sum).  Counts above 7 are capped (a zero difference stores one zero
byte), exactly like the 3-bit field forces in the original.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines import BaselineCompressor
from repro.errors import CorruptDataError

LAG = 32


def _leading_zero_byte_counts(mag: np.ndarray) -> np.ndarray:
    """Per-value leading-zero-byte count, capped at 7 (3-bit field)."""
    rows = mag.astype(">u8").view(np.uint8).reshape(len(mag), 8)
    nonzero = rows != 0
    first = np.argmax(nonzero, axis=1)
    first[~nonzero.any(axis=1)] = 8
    return np.minimum(first, 7).astype(np.uint8)


class GFC(BaselineCompressor):
    """Lag-32 difference + sign/leading-zero-byte nibble coding (FP64)."""

    name = "GFC"
    device = "GPU"
    datatype = "FP64"

    def __init__(self, dtype=np.float64) -> None:
        if np.dtype(dtype) != np.float64:
            raise ValueError("GFC compresses double-precision data only")

    def compress(self, data: bytes) -> bytes:
        n = len(data) // 8
        words = np.frombuffer(data, dtype="<u8", count=n)
        tail = data[n * 8 :]
        prev = np.zeros(n, dtype=np.uint64)
        prev[LAG:] = words[:-LAG]
        forward = words - prev          # wraps mod 2^64
        backward = prev - words
        # Interpret the wrapped difference as signed: negative iff the
        # forward difference's top bit is set.
        negative = (forward >> np.uint64(63)).astype(bool)
        mag = np.where(negative, backward, forward)
        lzb = _leading_zero_byte_counts(mag)
        kept = (8 - lzb).astype(np.int64)
        nibbles = (negative.astype(np.uint8) << 3) | lzb
        packed = np.zeros((n + 1) // 2, dtype=np.uint8)
        packed |= np.left_shift(nibbles[0::2], 4, dtype=np.uint8)
        packed[: n // 2] |= nibbles[1::2]
        le_rows = mag.astype("<u8").view(np.uint8).reshape(n, 8)
        col = np.arange(8)
        keep_mask = col[None, :] < kept[:, None]
        residuals = le_rows[keep_mask]  # row-major: value order, low bytes first
        return (
            struct.pack("<IB", n, len(tail))
            + tail
            + packed.tobytes()
            + residuals.tobytes()
        )

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 5:
            raise CorruptDataError("GFC payload shorter than its header")
        n, tail_len = struct.unpack_from("<IB", blob, 0)
        pos = 5
        tail = blob[pos : pos + tail_len]
        pos += tail_len
        header_bytes = (n + 1) // 2
        packed = np.frombuffer(blob, dtype=np.uint8, count=header_bytes, offset=pos)
        pos += header_bytes
        nibbles = np.empty(n, dtype=np.uint8)
        nibbles[0::2] = packed[: (n + 1) // 2] >> 4
        nibbles[1::2] = packed[: n // 2] & 0xF
        negative = (nibbles >> 3).astype(bool)
        kept = (8 - (nibbles & 0x7)).astype(np.int64)
        total = int(kept.sum())
        residuals = np.frombuffer(blob, dtype=np.uint8, count=total, offset=pos)
        if pos + total != len(blob):
            raise CorruptDataError("GFC residual stream length mismatch")
        rows = np.zeros((n, 8), dtype=np.uint8)
        col = np.arange(8)
        keep_mask = col[None, :] < kept[:, None]
        rows[keep_mask] = residuals
        mag = rows.reshape(-1).view("<u8").astype(np.uint64)
        # Lag-32 prefix reconstruction, 32 lanes at a time.
        words = np.empty(n, dtype=np.uint64)
        prev = np.zeros(min(LAG, n), dtype=np.uint64)
        for start in range(0, n, LAG):
            stop = min(start + LAG, n)
            width = stop - start
            base = prev[:width]
            block = np.where(negative[start:stop], base - mag[start:stop],
                             base + mag[start:stop])
            words[start:stop] = block
            if width == LAG:
                prev = block
            else:  # final partial block: keep untouched lanes
                prev = np.concatenate([block, prev[width:]])
        return words.astype("<u8").tobytes() + tail
