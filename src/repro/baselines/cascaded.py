"""nvCOMP Cascaded: RLE + delta encoding + bit packing.

The Cascaded scheme (Table 1, "General") chains run-length encoding over
equal words, delta encoding of the run values, and fixed-width bit
packing of both the value and run-length streams.  It excels on highly
repetitive numeric data and does little on smooth floating-point fields,
matching its mid-to-low position in the paper's figures.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines import BaselineCompressor
from repro.bitpack import (
    count_leading_zeros,
    pack_words,
    packed_size_bytes,
    unpack_words,
    words_from_bytes,
    words_to_bytes,
)
from repro.bitpack.zigzag import zigzag_decode, zigzag_encode
from repro.errors import CorruptDataError


def _rle(words: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length encode into (values, run lengths)."""
    if len(words) == 0:
        return words, np.zeros(0, dtype=np.uint64)
    change = np.empty(len(words), dtype=bool)
    change[0] = True
    change[1:] = words[1:] != words[:-1]
    starts = np.nonzero(change)[0]
    lengths = np.diff(np.append(starts, len(words))).astype(np.uint64)
    return words[starts], lengths


def _pack_stream(values: np.ndarray, word_bits: int) -> bytes:
    """Width byte + fixed-width packed words."""
    if len(values) == 0:
        return bytes([0])
    leading = int(count_leading_zeros(values.max(keepdims=True), word_bits)[0])
    width = word_bits - leading
    return bytes([width]) + pack_words(values, width, word_bits)


def _unpack_stream(blob: bytes, pos: int, count: int, word_bits: int) -> tuple[np.ndarray, int]:
    if pos >= len(blob):
        raise CorruptDataError("Cascaded truncated stream header")
    width = blob[pos]
    pos += 1
    if width > word_bits:
        raise CorruptDataError(f"Cascaded width {width} exceeds word size")
    size = packed_size_bytes(count, width)
    values = unpack_words(blob[pos : pos + size], count, width, word_bits)
    return values, pos + size


class Cascaded(BaselineCompressor):
    """RLE -> delta -> bitpack, at the element word size."""

    name = "Cascaded"
    device = "GPU"
    datatype = "General"

    def __init__(self, dtype=np.float32) -> None:
        dtype = np.dtype(dtype)
        self.word_bits = 64 if dtype.itemsize == 8 else 32

    def compress(self, data: bytes) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        values, lengths = _rle(words)
        prev = np.zeros_like(values)
        prev[1:] = values[:-1]
        deltas = zigzag_encode(values - prev, self.word_bits)
        lengths64 = lengths.astype(np.uint64)
        return (
            struct.pack("<IIB", len(words), len(values), len(tail))
            + tail
            + _pack_stream(deltas, self.word_bits)
            + _pack_stream(lengths64, 64)
        )

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 9:
            raise CorruptDataError("Cascaded payload shorter than its header")
        n_words, n_runs, tail_len = struct.unpack_from("<IIB", blob, 0)
        pos = 9
        tail = blob[pos : pos + tail_len]
        pos += tail_len
        deltas, pos = _unpack_stream(blob, pos, n_runs, self.word_bits)
        lengths, pos = _unpack_stream(blob, pos, n_runs, 64)
        if pos != len(blob):
            raise CorruptDataError("Cascaded trailing garbage")
        diffs = zigzag_decode(deltas, self.word_bits)
        values = np.cumsum(diffs, dtype=diffs.dtype)
        total = int(lengths.sum())
        if total != n_words:
            raise CorruptDataError("Cascaded run lengths do not cover the data")
        words = np.repeat(values, lengths.astype(np.int64))
        return words_to_bytes(words, tail)
