"""ndzip: high-throughput block compressor (Knorr et al., DCC'21).

ndzip partitions the input into hypercubes (4096 values in 1-D), applies
the integer Lorenzo transform (for 1-D: the difference to the previous
value, computed as an XOR-free residual on the two's-complement mapping),
bit-transposes each 32/64-value group of residuals, and stores each
group as a head word whose bits flag the nonzero transposed words,
followed by those words ("zero-word compaction").

ndzip is the only other CPU+GPU-compatible compressor the paper tests
and requires the input's dimensionality; ours runs in its 1-D mode.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines import BaselineCompressor
from repro.bitpack import (
    bit_transpose,
    bit_untranspose,
    pack_words,
    unpack_words,
    words_from_bytes,
    words_to_bytes,
)
from repro.errors import CorruptDataError

BLOCK_WORDS = 4096


class Ndzip(BaselineCompressor):
    """Lorenzo transform + per-group transposed zero-word compaction."""

    name = "Ndzip"
    device = "CPU+GPU"
    datatype = "FP32 & FP64"

    def __init__(self, dtype=np.float32) -> None:
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("ndzip supports float32/float64")
        self.word_bits = dtype.itemsize * 8

    def _forward(self, words: np.ndarray) -> np.ndarray:
        # 1-D integer Lorenzo: residual = value XOR predecessor.  ndzip
        # uses the XOR residual because it never overflows and transposes
        # well (shared high bits cancel to zero planes).
        prev = np.zeros_like(words)
        prev[1:] = words[:-1]
        return words ^ prev

    def _inverse(self, residuals: np.ndarray) -> np.ndarray:
        # Prefix XOR scan (log-depth on the GPU; numpy does it bytewise).
        out = residuals.copy()
        shift = 1
        n = len(out)
        while shift < n:
            out[shift:] ^= out[:-shift].copy()
            shift *= 2
        return out

    def compress(self, data: bytes) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        residuals = self._forward(words)
        wb = self.word_bits
        dtype = words.dtype
        parts = [struct.pack("<IB", len(words), len(tail)), tail]
        for start in range(0, len(words), BLOCK_WORDS):
            block = residuals[start : start + BLOCK_WORDS]
            # Transpose per group of `wb` values so each group yields `wb`
            # transposed words and a wb-bit head mask.
            for gstart in range(0, len(block), wb):
                group = block[gstart : gstart + wb]
                transposed = np.frombuffer(
                    bit_transpose(group, wb), dtype=np.uint8
                ).view(dtype)
                mask = transposed != 0
                # Width-1 word-lane packing == np.packbits byte-for-byte;
                # the wire layout is unchanged.
                parts.append(pack_words(mask.astype(dtype), 1, wb))
                parts.append(transposed[mask].tobytes())
        return b"".join(parts)

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 5:
            raise CorruptDataError("ndzip payload shorter than its header")
        n, tail_len = struct.unpack_from("<IB", blob, 0)
        pos = 5
        tail = blob[pos : pos + tail_len]
        pos += tail_len
        wb = self.word_bits
        word_bytes = wb // 8
        dtype = np.dtype(f"<u{word_bytes}")
        residuals = np.empty(n, dtype=dtype)
        for start in range(0, n, wb):
            count = min(wb, n - start)
            t_bytes = wb * ((count + 7) // 8)
            t_words = t_bytes // word_bytes
            head_bytes = (t_words + 7) // 8
            if len(blob) - pos < head_bytes:
                raise CorruptDataError("ndzip head mask truncated")
            head = np.frombuffer(blob, dtype=np.uint8, count=head_bytes, offset=pos)
            pos += head_bytes
            mask = unpack_words(head, t_words, 1, wb) != 0
            kept = int(mask.sum())
            nonzero = np.frombuffer(blob, dtype=dtype, count=kept, offset=pos)
            pos += kept * word_bytes
            transposed = np.zeros(t_words, dtype=dtype)
            transposed[mask] = nonzero
            residuals[start : start + count] = bit_untranspose(
                transposed.tobytes(), count, wb
            )
        if pos != len(blob):
            raise CorruptDataError("ndzip trailing garbage")
        return words_to_bytes(self._inverse(residuals), tail)
