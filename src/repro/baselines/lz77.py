"""Mini byte-oriented LZ77 family: the LZ4 and Snappy table rows.

A real greedy hash-chain LZ compressor with the LZ4 design points:
4-byte minimum matches found through a prefix hash table, literal runs
and matches interleaved as tokens, and an acceleration heuristic that
skips faster through incompressible regions.  LZ4 and Snappy differ here
only in parameters (window size, hash width, acceleration), which is
also how they differ in spirit: both are byte LZ codecs tuned for speed
over ratio, and both sit in the low-ratio/high-speed corner of the
paper's figures on floating-point data.

Token format (self-describing, little-endian):

* literal run: ``0x00`` + varint length + bytes
* match: ``0x01`` + varint length + u16 backward offset

Varints are LEB128.
"""

from __future__ import annotations

import struct

from repro.baselines import BaselineCompressor
from repro.errors import CorruptDataError

MIN_MATCH = 4


def _write_varint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(blob: bytes, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if pos >= len(blob):
            raise CorruptDataError("LZ varint truncated")
        byte = blob[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if byte < 0x80:
            return value, pos
        shift += 7
        if shift > 35:
            raise CorruptDataError("LZ varint too long")


class LZ4Like(BaselineCompressor):
    """Greedy hash-table LZ with LZ4-style acceleration."""

    name = "LZ4"
    device = "GPU"
    datatype = "General"

    def __init__(self, dtype=None, *, hash_log2: int = 16, window: int = 65535,
                 search_effort: int = 1, name: str | None = None) -> None:
        """``search_effort`` scales how long the scanner keeps probing
        before accelerating through incompressible data: 0 skips soonest
        (Snappy-like), large values effectively never skip."""
        self.hash_log2 = hash_log2
        self.window = window
        self.search_effort = search_effort
        self._skip_shift = min(30, 5 + search_effort)
        if name:
            self.name = name

    def _hash(self, word: int) -> int:
        return ((word * 2654435761) & 0xFFFFFFFF) >> (32 - self.hash_log2)

    def compress(self, data: bytes) -> bytes:
        n = len(data)
        out = bytearray(struct.pack("<I", n))
        if n == 0:
            return bytes(out)
        table: dict[int, int] = {}
        pos = 0
        literal_start = 0
        misses = 0
        while pos + MIN_MATCH <= n:
            word = int.from_bytes(data[pos : pos + 4], "little")
            slot = self._hash(word)
            candidate = table.get(slot, -1)
            table[slot] = pos
            if (
                candidate >= 0
                and pos - candidate <= self.window
                and data[candidate : candidate + 4] == data[pos : pos + 4]
            ):
                # Extend the match forward.
                length = 4
                while (
                    pos + length < n
                    and data[candidate + length] == data[pos + length]
                ):
                    length += 1
                if literal_start < pos:
                    out.append(0x00)
                    _write_varint(out, pos - literal_start)
                    out += data[literal_start:pos]
                out.append(0x01)
                _write_varint(out, length)
                out += struct.pack("<H", pos - candidate)
                pos += length
                literal_start = pos
                misses = 0
            else:
                misses += 1
                pos += 1 + (misses >> self._skip_shift)
        if literal_start < n:
            out.append(0x00)
            _write_varint(out, n - literal_start)
            out += data[literal_start:]
        return bytes(out)

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 4:
            raise CorruptDataError("LZ payload shorter than its header")
        (n,) = struct.unpack_from("<I", blob, 0)
        pos = 4
        out = bytearray()
        while pos < len(blob):
            kind = blob[pos]
            pos += 1
            if kind == 0x00:
                length, pos = _read_varint(blob, pos)
                if pos + length > len(blob):
                    raise CorruptDataError("LZ literal run truncated")
                out += blob[pos : pos + length]
                pos += length
            elif kind == 0x01:
                length, pos = _read_varint(blob, pos)
                if pos + 2 > len(blob):
                    raise CorruptDataError("LZ match token truncated")
                (offset,) = struct.unpack_from("<H", blob, pos)
                pos += 2
                if offset == 0 or offset > len(out):
                    raise CorruptDataError("LZ match offset out of range")
                start = len(out) - offset
                for i in range(length):  # may self-overlap, byte by byte
                    out.append(out[start + i])
            else:
                raise CorruptDataError(f"LZ unknown token {kind}")
        if len(out) != n:
            raise CorruptDataError(
                f"LZ decompressed to {len(out)} bytes, expected {n}"
            )
        return bytes(out)


def lz4(dtype=None) -> LZ4Like:
    return LZ4Like(dtype, hash_log2=16, window=65535, search_effort=1, name="LZ4")


def snappy(dtype=None) -> LZ4Like:
    return LZ4Like(dtype, hash_log2=14, window=32768, search_effort=0,
                   name="Snappy")
