"""FPC and pFPC: hash-table-predicted double-precision compression.

Reimplementation of Burtscher & Ratanaworabhan's FPC [TC'09]: two
predictors — an FCM (finite context method) and a DFCM (differential
FCM), each backed by a hash table — guess every double from the
preceding stream.  The more accurate prediction is XORed with the true
value; the result's leading zero bytes are replaced by a 4-bit header
(1 selector bit + 3-bit zero-byte count) and only the residual bytes are
stored.  Like the original, the 3-bit count cannot express "exactly 4
zero bytes", so 4 is downgraded to 3 (one extra residual byte).

pFPC [DCC'09] is the parallel variant: the input is cut into chunks and
FPC runs independently (fresh tables) on each, mirroring one chunk per
thread.

This is the algorithm the paper's own FCM transformation was derived
from ("our evaluation ... showed that FPC delivers high compression
ratios without using a complex algorithm", §3.2) — but FPC needs two
hash tables per thread, untenable on GPUs, which is why DPratio replaces
the tables with a sort.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines import BaselineCompressor
from repro.errors import CorruptDataError

_MASK64 = (1 << 64) - 1

#: 3-bit header codes map to these leading-zero-byte counts (4 is skipped).
_CODE_TO_LZB = (0, 1, 2, 3, 5, 6, 7, 8)
_LZB_TO_CODE = {lzb: code for code, lzb in enumerate(_CODE_TO_LZB)}
_LZB_TO_CODE[4] = 3  # downgrade: store one extra residual byte


def _leading_zero_bytes(x: int) -> int:
    if x == 0:
        return 8
    return 8 - (x.bit_length() + 7) // 8


class _PredictorState:
    """FCM + DFCM hash-table predictors over a 64-bit word stream."""

    def __init__(self, table_log2: int) -> None:
        size = 1 << table_log2
        self.mask = size - 1
        self.fcm = [0] * size
        self.dfcm = [0] * size
        self.fcm_hash = 0
        self.dfcm_hash = 0
        self.last = 0

    def predictions(self) -> tuple[int, int]:
        return self.fcm[self.fcm_hash], (self.dfcm[self.dfcm_hash] + self.last) & _MASK64

    def update(self, value: int) -> None:
        self.fcm[self.fcm_hash] = value
        self.fcm_hash = ((self.fcm_hash << 6) ^ (value >> 48)) & self.mask
        delta = (value - self.last) & _MASK64
        self.dfcm[self.dfcm_hash] = delta
        self.dfcm_hash = ((self.dfcm_hash << 2) ^ (delta >> 40)) & self.mask
        self.last = value


class FPC(BaselineCompressor):
    """Serial FPC for double-precision data."""

    name = "FPC"
    device = "CPU"
    datatype = "FP64"

    def __init__(self, dtype=np.float64, table_log2: int = 16) -> None:
        if np.dtype(dtype) != np.float64:
            raise ValueError("FPC compresses double-precision data only")
        self.table_log2 = table_log2

    def compress(self, data: bytes) -> bytes:
        n_words = len(data) // 8
        words = np.frombuffer(data, dtype="<u8", count=n_words).tolist()
        tail = data[n_words * 8 :]
        headers = bytearray((n_words + 1) // 2)
        residuals = bytearray()
        state = _PredictorState(self.table_log2)
        for i, value in enumerate(words):
            pred_fcm, pred_dfcm = state.predictions()
            xor_fcm = value ^ pred_fcm
            xor_dfcm = value ^ pred_dfcm
            if xor_fcm <= xor_dfcm:
                selector, xor = 0, xor_fcm
            else:
                selector, xor = 1, xor_dfcm
            code = _LZB_TO_CODE[_leading_zero_bytes(xor)]
            kept = 8 - _CODE_TO_LZB[code]
            residuals += xor.to_bytes(8, "little")[:kept]  # little-endian keeps low bytes
            nibble = (selector << 3) | code
            if i % 2 == 0:
                headers[i // 2] = nibble << 4
            else:
                headers[i // 2] |= nibble
            state.update(value)
        return (
            struct.pack("<IB", n_words, len(tail))
            + tail
            + bytes(headers)
            + bytes(residuals)
        )

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 5:
            raise CorruptDataError("FPC payload shorter than its header")
        n_words, tail_len = struct.unpack_from("<IB", blob, 0)
        pos = 5
        tail = blob[pos : pos + tail_len]
        pos += tail_len
        header_bytes = (n_words + 1) // 2
        headers = blob[pos : pos + header_bytes]
        if len(headers) != header_bytes:
            raise CorruptDataError("FPC truncated header stream")
        pos += header_bytes
        state = _PredictorState(self.table_log2)
        out = bytearray()
        for i in range(n_words):
            nibble = (headers[i // 2] >> 4) if i % 2 == 0 else (headers[i // 2] & 0xF)
            selector = nibble >> 3
            kept = 8 - _CODE_TO_LZB[nibble & 0x7]
            chunk = blob[pos : pos + kept]
            if len(chunk) != kept:
                raise CorruptDataError("FPC truncated residual stream")
            pos += kept
            xor = int.from_bytes(chunk + b"\x00" * (8 - kept), "little")
            pred_fcm, pred_dfcm = state.predictions()
            value = xor ^ (pred_dfcm if selector else pred_fcm)
            out += value.to_bytes(8, "little")
            state.update(value)
        return bytes(out) + tail


class PFPC(BaselineCompressor):
    """pFPC: FPC applied independently to fixed-size chunks (one per thread)."""

    name = "pFPC"
    device = "CPU"
    datatype = "FP64"

    def __init__(self, dtype=np.float64, chunk_values: int = 4096, table_log2: int = 14) -> None:
        if np.dtype(dtype) != np.float64:
            raise ValueError("pFPC compresses double-precision data only")
        self.chunk_values = chunk_values
        self.table_log2 = table_log2

    def compress(self, data: bytes) -> bytes:
        fpc = FPC(table_log2=self.table_log2)
        chunk_bytes = self.chunk_values * 8
        parts = []
        for start in range(0, len(data), chunk_bytes):
            parts.append(fpc.compress(data[start : start + chunk_bytes]))
        header = struct.pack("<I", len(parts)) + b"".join(
            struct.pack("<I", len(p)) for p in parts
        )
        return header + b"".join(parts)

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 4:
            raise CorruptDataError("pFPC payload shorter than its header")
        (n_parts,) = struct.unpack_from("<I", blob, 0)
        pos = 4
        sizes = []
        for _ in range(n_parts):
            if pos + 4 > len(blob):
                raise CorruptDataError("pFPC truncated size table")
            (size,) = struct.unpack_from("<I", blob, pos)
            sizes.append(size)
            pos += 4
        fpc = FPC(table_log2=self.table_log2)
        out = []
        for size in sizes:
            out.append(fpc.decompress(blob[pos : pos + size]))
            pos += size
        if pos != len(blob):
            raise CorruptDataError("pFPC trailing garbage")
        return b"".join(out)
