"""MPC: Massively Parallel Compression (Yang et al., Cluster'15).

MPC chains parallelisable transformations: dimension-aware delta
encoding, bit transposition across 32-value groups, and elimination of
the resulting zero words, "which are recorded in a bitmap and then
eliminated from the value sequence" (paper §2.1).  MPC requires the tuple
size (dimensionality) of the input; we default to 1 like the paper's
runs on flat arrays.

Layout per block of 1024 words: a raw bitmap (one bit per transposed
word) followed by the surviving nonzero words.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines import BaselineCompressor
from repro.bitpack import (
    bit_transpose,
    bit_untranspose,
    pack_words,
    unpack_words,
    words_from_bytes,
    words_to_bytes,
)
from repro.bitpack.zigzag import zigzag_decode, zigzag_encode
from repro.errors import CorruptDataError

BLOCK_WORDS = 1024


class MPC(BaselineCompressor):
    """Delta + bit transposition + zero-word bitmap elimination."""

    name = "MPC"
    device = "GPU"
    datatype = "FP32 & FP64"

    def __init__(self, dtype=np.float32, dimension: int = 1) -> None:
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("MPC supports float32/float64")
        self.word_bits = dtype.itemsize * 8
        if dimension < 1:
            raise ValueError("tuple size must be positive")
        self.dimension = dimension

    def _delta(self, words: np.ndarray) -> np.ndarray:
        prev = np.zeros_like(words)
        prev[self.dimension :] = words[: -self.dimension] if self.dimension <= len(words) else 0
        return zigzag_encode(words - prev, self.word_bits)

    def _undelta(self, deltas: np.ndarray) -> np.ndarray:
        diffs = zigzag_decode(deltas, self.word_bits)
        if self.dimension == 1:
            return np.cumsum(diffs, dtype=diffs.dtype)
        out = diffs.copy()
        for lane in range(self.dimension):
            out[lane :: self.dimension] = np.cumsum(diffs[lane :: self.dimension],
                                                    dtype=diffs.dtype)
        return out

    def compress(self, data: bytes) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        deltas = self._delta(words)
        parts = [struct.pack("<IB", len(words), len(tail)), tail]
        dtype = words.dtype
        for start in range(0, len(words), BLOCK_WORDS):
            block = deltas[start : start + BLOCK_WORDS]
            transposed = np.frombuffer(
                bit_transpose(block, self.word_bits), dtype=np.uint8
            ).view(dtype)
            mask = transposed != 0
            # Width-1 word-lane packing == np.packbits byte-for-byte;
            # the wire layout is unchanged.
            parts.append(pack_words(mask.astype(dtype), 1, self.word_bits))
            parts.append(transposed[mask].tobytes())
        return b"".join(parts)

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 5:
            raise CorruptDataError("MPC payload shorter than its header")
        n, tail_len = struct.unpack_from("<IB", blob, 0)
        pos = 5
        tail = blob[pos : pos + tail_len]
        pos += tail_len
        word_bytes = self.word_bits // 8
        dtype = np.dtype(f"<u{word_bytes}")
        deltas = np.empty(n, dtype=dtype)
        for start in range(0, n, BLOCK_WORDS):
            count = min(BLOCK_WORDS, n - start)
            # The transposed stream holds word_bits rows of ceil(count/8) bytes.
            t_bytes = self.word_bits * ((count + 7) // 8)
            t_words = t_bytes // word_bytes
            bitmap_bytes = (t_words + 7) // 8
            if len(blob) - pos < bitmap_bytes:
                raise CorruptDataError("MPC bitmap truncated")
            bitmap = np.frombuffer(blob, dtype=np.uint8, count=bitmap_bytes, offset=pos)
            pos += bitmap_bytes
            mask = unpack_words(bitmap, t_words, 1, self.word_bits) != 0
            kept = int(mask.sum())
            nonzero = np.frombuffer(blob, dtype=dtype, count=kept, offset=pos)
            pos += kept * word_bytes
            transposed = np.zeros(t_words, dtype=dtype)
            transposed[mask] = nonzero
            deltas[start : start + count] = bit_untranspose(
                transposed.tobytes(), count, self.word_bits
            )
        if pos != len(blob):
            raise CorruptDataError("MPC trailing garbage")
        return words_to_bytes(self._undelta(deltas), tail)
