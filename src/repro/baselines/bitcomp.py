"""Bitcomp-style block bit-packing (nvCOMP's proprietary FP compressor).

Bitcomp is closed source; nvCOMP documents it as a fast bit-packing
scheme for numeric data with optional delta prediction.  We model the
three variants the paper benchmarks:

* ``Bitcomp-b0`` — delta against the previous value, zigzag, per-block
  fixed-width packing (4096-value blocks);
* ``Bitcomp-b1`` — the same with finer 1024-value blocks (higher ratio,
  more header overhead);
* ``Bitcomp-i0`` — no prediction, direct per-block packing (fastest,
  lowest ratio; the variant on the paper's FP32 GPU Pareto front).

Block header: one byte holding the packed bit width.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines import BaselineCompressor
from repro.bitpack import (
    count_leading_zeros,
    pack_words,
    packed_size_bytes,
    unpack_words,
    words_from_bytes,
    words_to_bytes,
)
from repro.bitpack.zigzag import zigzag_decode, zigzag_encode
from repro.errors import CorruptDataError


class Bitcomp(BaselineCompressor):
    """Per-block fixed-width packing with optional delta prediction."""

    device = "GPU"
    datatype = "FP32 & FP64"

    def __init__(self, dtype=np.float32, *, delta: bool = True,
                 block_words: int = 4096) -> None:
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("Bitcomp supports float32/float64")
        self.word_bits = dtype.itemsize * 8
        self.delta = delta
        self.block_words = block_words
        mode = "b" if delta else "i"
        level = {4096: 0, 1024: 1}.get(block_words, block_words)
        self.name = f"Bitcomp-{mode}{level}"

    def _transform(self, words: np.ndarray) -> np.ndarray:
        if not self.delta:
            return words
        prev = np.zeros_like(words)
        prev[1:] = words[:-1]
        return zigzag_encode(words - prev, self.word_bits)

    def _untransform(self, coded: np.ndarray) -> np.ndarray:
        if not self.delta:
            return coded
        diffs = zigzag_decode(coded, self.word_bits)
        return np.cumsum(diffs, dtype=diffs.dtype)

    def compress(self, data: bytes) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        coded = self._transform(words)
        parts = [struct.pack("<IB", len(words), len(tail)), tail]
        for start in range(0, len(coded), self.block_words):
            block = coded[start : start + self.block_words]
            leading = int(count_leading_zeros(block.max(keepdims=True), self.word_bits)[0])
            width = self.word_bits - leading
            parts.append(bytes([width]))
            parts.append(pack_words(block, width, self.word_bits))
        return b"".join(parts)

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 5:
            raise CorruptDataError("Bitcomp payload shorter than its header")
        n, tail_len = struct.unpack_from("<IB", blob, 0)
        pos = 5
        tail = blob[pos : pos + tail_len]
        pos += tail_len
        dtype = np.dtype(f"<u{self.word_bits // 8}")
        coded = np.empty(n, dtype=dtype)
        for start in range(0, n, self.block_words):
            count = min(self.block_words, n - start)
            if pos >= len(blob):
                raise CorruptDataError("Bitcomp truncated block header")
            width = blob[pos]
            pos += 1
            if width > self.word_bits:
                raise CorruptDataError(f"Bitcomp width {width} exceeds word size")
            size = packed_size_bytes(count, width)
            coded[start : start + count] = unpack_words(
                blob[pos : pos + size], count, width, self.word_bits
            )
            pos += size
        if pos != len(blob):
            raise CorruptDataError("Bitcomp trailing garbage")
        return words_to_bytes(self._untransform(coded), tail)
