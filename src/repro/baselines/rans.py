"""rANS: range asymmetric numeral system entropy coder (nvCOMP's "ANS").

A real, from-scratch implementation of byte-oriented rANS [Duda, DCC'14]
in the 64-bit-state / 32-bit-renormalisation formulation.  To mirror the
GPU implementation's parallelism (and to be fast in numpy), the input is
interleaved across ``n_lanes`` independent encoder states: lane ``l``
codes bytes ``l, l+NL, l+2NL, ...``  Every lane emits its own word
stream; encoding walks the lanes' symbols in reverse, vectorised across
lanes, with at most one 32-bit renormalisation per symbol (the rans64
invariant).

The symbol model is order-0: a 256-entry frequency table normalised to
``2^PROB_BITS``, stored in the header; every occurring byte keeps a
frequency of at least 1 so coding is always possible.

Entropy coding alone cannot exploit floating-point smoothness, which is
why ANS sits at low ratios in the paper's figures despite high GPU
throughput.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines import BaselineCompressor
from repro.errors import CorruptDataError

PROB_BITS = 12
PROB_SCALE = 1 << PROB_BITS
RANS_L = np.uint64(1 << 31)  # lower bound of the normalised state interval
DEFAULT_LANES = 64


def normalized_frequencies(data: np.ndarray) -> np.ndarray:
    """256-entry frequency table summing to ``PROB_SCALE``; present symbols >= 1."""
    counts = np.bincount(data, minlength=256).astype(np.float64)
    total = counts.sum()
    if total == 0:
        freqs = np.zeros(256, dtype=np.int64)
        freqs[0] = PROB_SCALE
        return freqs
    freqs = np.floor(counts * (PROB_SCALE / total)).astype(np.int64)
    freqs[(counts > 0) & (freqs == 0)] = 1
    # Repair the sum by adjusting frequent symbols (never below 1 for
    # symbols that occur, never below 0 for absent ones).
    diff = PROB_SCALE - int(freqs.sum())
    order = np.argsort(-counts)
    i = 0
    while diff != 0:
        sym = int(order[i % 256])
        if diff > 0:
            if counts[sym] > 0:
                freqs[sym] += 1
                diff -= 1
        else:
            floor = 1 if counts[sym] > 0 else 0
            if freqs[sym] > floor:
                freqs[sym] -= 1
                diff += 1
        i += 1
        if i > 1 << 20:  # pragma: no cover - defensive
            raise AssertionError("frequency normalisation failed to converge")
    return freqs


class ANS(BaselineCompressor):
    """Order-0 interleaved rANS over raw bytes."""

    name = "ANS"
    device = "GPU"
    datatype = "FP32 & FP64"

    def __init__(self, dtype=None, n_lanes: int = DEFAULT_LANES) -> None:
        if n_lanes < 1 or n_lanes > 1024:
            raise ValueError("lane count out of range")
        self.n_lanes = n_lanes

    # -- encoding ---------------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        symbols = np.frombuffer(data, dtype=np.uint8)
        n = len(symbols)
        lanes = 1 if n < 4 * DEFAULT_LANES else self.n_lanes
        freqs = normalized_frequencies(symbols)
        cum = np.zeros(257, dtype=np.int64)
        np.cumsum(freqs, out=cum[1:])
        streams, states = self._encode_lanes(symbols, lanes, freqs, cum)
        header = struct.pack("<IH", n, lanes)
        header += freqs.astype("<u2").tobytes()
        header += states.astype("<u8").tobytes()
        header += np.array([len(s) for s in streams], dtype="<u4").tobytes()
        return header + b"".join(s.tobytes() for s in streams)

    def _encode_lanes(
        self, symbols: np.ndarray, lanes: int, freqs: np.ndarray, cum: np.ndarray
    ) -> tuple[list[np.ndarray], np.ndarray]:
        n = len(symbols)
        steps = (n + lanes - 1) // lanes
        counts = np.full(lanes, n // lanes, dtype=np.int64)
        counts[: n % lanes] += 1
        # sym_matrix[l, j] = symbols[j * lanes + l] (padded with 0).
        padded = np.zeros(steps * lanes, dtype=np.uint8)
        padded[:n] = symbols
        sym_matrix = padded.reshape(steps, lanes).T
        x = np.full(lanes, RANS_L, dtype=np.uint64)
        emitted_words = np.zeros((steps, lanes), dtype=np.uint32)
        emitted_mask = np.zeros((steps, lanes), dtype=bool)
        freq64 = freqs.astype(np.uint64)
        cum64 = cum.astype(np.uint64)
        shift32 = np.uint64(32)
        kbits = np.uint64(PROB_BITS)
        # x_max threshold per frequency: ((L >> k) << 32) * f
        thresholds = ((RANS_L >> kbits) << shift32) * freq64
        mask32 = np.uint64(0xFFFFFFFF)
        for j in range(steps - 1, -1, -1):
            active = counts > j
            s = sym_matrix[:, j]
            f = freq64[s]
            renorm = active & (x >= thresholds[s])
            emitted_words[j, renorm] = (x[renorm] & mask32).astype(np.uint32)
            emitted_mask[j] = renorm
            x[renorm] >>= shift32
            # x = ((x // f) << k) + (x % f) + cum[s], only for active lanes
            q = x // np.where(f == 0, 1, f)
            r = x - q * f
            new_x = (q << kbits) + r + cum64[s]
            x = np.where(active, new_x, x)
        # Lane streams: words must be CONSUMED by the decoder in forward
        # symbol order, i.e. in the same j order the decoder renormalises.
        streams = [emitted_words[emitted_mask[:, lane], lane] for lane in range(lanes)]
        return streams, x

    # -- decoding ---------------------------------------------------------

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 6:
            raise CorruptDataError("ANS payload shorter than its header")
        n, lanes = struct.unpack_from("<IH", blob, 0)
        pos = 6
        if lanes < 1:
            raise CorruptDataError("ANS lane count must be positive")
        freqs = np.frombuffer(blob, dtype="<u2", count=256, offset=pos).astype(np.int64)
        pos += 512
        if freqs.sum() != PROB_SCALE:
            raise CorruptDataError("ANS frequency table does not normalise")
        states = np.frombuffer(blob, dtype="<u8", count=lanes, offset=pos).astype(np.uint64)
        pos += 8 * lanes
        lengths = np.frombuffer(blob, dtype="<u4", count=lanes, offset=pos).astype(np.int64)
        pos += 4 * lanes
        total_words = int(lengths.sum())
        words = np.frombuffer(blob, dtype="<u4", count=total_words, offset=pos)
        if pos + 4 * total_words != len(blob):
            raise CorruptDataError("ANS stream length mismatch")
        # Pad lane streams into a matrix for vectorised cursor gathering.
        max_len = int(lengths.max()) if lanes else 0
        stream_matrix = np.zeros((lanes, max_len + 1), dtype=np.uint64)
        offsets = np.zeros(lanes + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        for lane in range(lanes):
            stream_matrix[lane, : lengths[lane]] = words[offsets[lane] : offsets[lane + 1]]
        cum = np.zeros(257, dtype=np.int64)
        np.cumsum(freqs, out=cum[1:])
        slot_to_symbol = np.repeat(
            np.arange(256, dtype=np.uint8), freqs.clip(min=0)
        )
        if len(slot_to_symbol) != PROB_SCALE:
            raise CorruptDataError("ANS frequency table is inconsistent")
        counts = np.full(lanes, n // lanes, dtype=np.int64)
        counts[: n % lanes] += 1
        steps = (n + lanes - 1) // lanes
        out = np.zeros((steps, lanes), dtype=np.uint8)
        x = states.copy()
        cursor = np.zeros(lanes, dtype=np.int64)
        lane_idx = np.arange(lanes)
        freq64 = freqs.astype(np.uint64)
        cum64 = cum.astype(np.uint64)
        kmask = np.uint64(PROB_SCALE - 1)
        kbits = np.uint64(PROB_BITS)
        shift32 = np.uint64(32)
        for j in range(steps):
            active = counts > j
            slot = x & kmask
            s = slot_to_symbol[slot.astype(np.int64)]
            out[j, active] = s[active]
            new_x = freq64[s] * (x >> kbits) + slot - cum64[s]
            x = np.where(active, new_x, x)
            renorm = active & (x < RANS_L)
            if renorm.any():
                take = stream_matrix[lane_idx[renorm], cursor[renorm]]
                x[renorm] = (x[renorm] << shift32) | take
                cursor[renorm] += 1
        if np.any(cursor > lengths):
            raise CorruptDataError("ANS lane stream overrun")
        return out.reshape(-1)[:n].tobytes() if n else b""
