"""The paper's Table 1: every comparison compressor, with metadata.

:func:`build_registry` returns the inventory rows (device, datatype,
version, source) used by the Table 1 benchmark; :func:`build_competitors`
instantiates the baselines that appear in a given figure — GPU figures
take the nvCOMP family + GFC + MPC + Ndzip + ZSTD-GPU, CPU figures take
Bzip2/FPC/FPzip/Gzip/pFPC/SPDP/ZFP + Ndzip + ZSTD-CPU, and FP64-only
codecs (FPC, pFPC, GFC) are excluded from FP32 runs, exactly like the
paper.  Multi-level codecs contribute their fastest and
best-compressing modes (paper §4).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import BaselineCompressor, BaselineSpec
from repro.baselines.bitcomp import Bitcomp
from repro.baselines.cascaded import Cascaded
from repro.baselines.fpc import FPC, PFPC
from repro.baselines.fpzip import FPzip
from repro.baselines.gfc import GFC
from repro.baselines.lz77 import lz4, snappy
from repro.baselines.mpc import MPC
from repro.baselines.ndzip import Ndzip
from repro.baselines.rans import ANS
from repro.baselines.spdp import SPDP
from repro.baselines.stdlib_codecs import (
    Bzip2,
    Gdeflate,
    ZstdCPU,
    ZstdGPU,
    deflate,
    gzip_best,
    gzip_fast,
)
from repro.baselines.zfp import ZFP

F32 = np.dtype(np.float32)
F64 = np.dtype(np.float64)


def build_registry() -> list[BaselineSpec]:
    """The 18 Table 1 rows (device / datatype / version / source)."""
    return [
        BaselineSpec("Ndzip", "CPU+GPU", "FP32 & FP64", "1.0", "[21] [22]", Ndzip),
        BaselineSpec("ZSTD", "CPU+GPU", "General", "2.6", "[2] [20]", ZstdCPU),
        BaselineSpec("ANS", "GPU", "FP32 & FP64", "2.6", "[2]", lambda d: ANS(d)),
        BaselineSpec("Bitcomp", "GPU", "FP32 & FP64", "2.6", "[2]", Bitcomp),
        BaselineSpec("Cascaded", "GPU", "General", "2.6", "[2]", Cascaded),
        BaselineSpec("Deflate", "GPU", "General", "2.6", "[2]", deflate),
        BaselineSpec("Gdeflate", "GPU", "General", "2.6", "[2]", Gdeflate),
        BaselineSpec("GFC", "GPU", "FP64", "2.2", "[30]", GFC),
        BaselineSpec("LZ4", "GPU", "General", "2.6", "[2]", lz4),
        BaselineSpec("MPC", "GPU", "FP32 & FP64", "1.2", "[37]", MPC),
        BaselineSpec("Snappy", "GPU", "General", "2.6", "[2]", snappy),
        BaselineSpec("Bzip2", "CPU", "General", "1.0.8", "[32]", Bzip2),
        BaselineSpec("FPC", "CPU", "FP64", "1.1", "[8]", FPC),
        BaselineSpec("FPzip", "CPU", "FP32 & FP64", "1.3", "[26]", FPzip),
        BaselineSpec("Gzip", "CPU", "General", "1.1", "[1]", gzip_fast),
        BaselineSpec("pFPC", "CPU", "FP64", "1.0", "[9]", PFPC),
        BaselineSpec("SPDP", "CPU", "FP32 & FP64", "1.1", "[11]", SPDP),
        BaselineSpec("ZFP", "CPU", "FP32 & FP64", "1.0", "[25]", ZFP),
    ]


def build_competitors(dtype: np.dtype, device_kind: str) -> list[BaselineCompressor]:
    """Instantiate the baselines of one figure's comparison set."""
    if device_kind not in ("cpu", "gpu"):
        raise ValueError("device_kind must be 'cpu' or 'gpu'")
    fp64 = dtype == F64
    if device_kind == "gpu":
        comps: list[BaselineCompressor] = [
            ANS(dtype),
            Bitcomp(dtype, delta=True, block_words=4096),
            Bitcomp(dtype, delta=True, block_words=1024),
            Bitcomp(dtype, delta=False, block_words=4096),
            Cascaded(dtype),
            deflate(dtype),
            Gdeflate(dtype),
            lz4(dtype),
            MPC(dtype),
            snappy(dtype),
            Ndzip(dtype),
            ZstdGPU(dtype),
        ]
        if fp64:
            comps.append(GFC(dtype))
        return comps
    comps = [
        Bzip2(dtype, level=1),
        Bzip2(dtype, level=9),
        FPzip(dtype),
        gzip_fast(dtype),
        gzip_best(dtype),
        SPDP(dtype, level=1),
        SPDP(dtype, level=9),
        ZFP(dtype),
        Ndzip(dtype),
        ZstdCPU(dtype, best=False),
        ZstdCPU(dtype, best=True),
    ]
    if fp64:
        comps.extend([FPC(dtype), PFPC(dtype)])
    return comps
