"""Seekable, optionally memory-mapped random-access container reads.

A :class:`ContainerReader` wraps one FPRZ container — in-memory bytes or
a file on disk — parses its header once, and serves element ranges by
decoding only the chunks that overlap each request
(:func:`repro.core.plan.plan_for_range`).  With ``mmap=True`` (the
default for paths) the container is memory-mapped, so a slice read of a
multi-gigabyte file touches the header, the chunk index, and the few
overlapping payload windows — nothing else is ever paged in.  This is
the ROADMAP's random-access archive scenario: HDF5-filter-style usage
where TB-scale files are read selectively per domain.

    with ContainerReader("field.fprz") as reader:
        window = reader[1024:2048]     # ndarray, only ~1 chunk decoded

Array containers index by *element* (results are 1-D, like
:func:`repro.api.decompress_range`); raw-bytes containers index by byte.
"""

from __future__ import annotations

import mmap as _mmap
import os

import numpy as np

from repro.core import container as fmt
from repro.core.compressor import decompress_range_bytes
from repro.core.executors import Executor

_DTYPE_BY_CODE = {
    fmt.DTYPE_F32: np.dtype(np.float32),
    fmt.DTYPE_F64: np.dtype(np.float64),
}


class ContainerReader:
    """Random-access reads over one container; decodes only what you ask.

    Parameters
    ----------
    source:
        The container — ``bytes``/``bytearray``/``memoryview``, or a
        filesystem path (``str``/``os.PathLike``).
    mmap:
        For path sources: memory-map the file (default) instead of
        reading it into memory.  Ignored for in-memory sources.
    workers / executor:
        Scheduling for the chunk decodes of each read, with the same
        vocabulary as :func:`repro.decompress` (``"serial"``,
        ``"threaded"``, ``"static-blocks"``, ``"process"``).
    """

    def __init__(
        self,
        source,
        *,
        mmap: bool = True,
        workers: int = 1,
        executor: str | Executor | None = None,
    ) -> None:
        self._file = None
        self._map = None
        if isinstance(source, (str, os.PathLike)):
            self._file = open(source, "rb")
            if mmap:
                self._map = _mmap.mmap(
                    self._file.fileno(), 0, access=_mmap.ACCESS_READ
                )
                self._blob = self._map
            else:
                self._blob = self._file.read()
                self._file.close()
                self._file = None
        elif isinstance(source, (bytes, bytearray, memoryview)):
            self._blob = source if isinstance(source, bytes) else bytes(source)
        else:
            raise TypeError(
                f"source must be bytes-like or a path, not {type(source).__name__}"
            )
        self._closed = False
        self._info = fmt.inspect_container(self._blob)
        self._dtype = _DTYPE_BY_CODE.get(self._info.dtype_code)
        self._workers = workers
        self._executor = executor

    # -- metadata ---------------------------------------------------------

    @property
    def info(self) -> fmt.ContainerInfo:
        """Parsed container metadata (header only; nothing decoded)."""
        return self._info

    @property
    def dtype(self) -> np.dtype | None:
        """Element dtype, or ``None`` for a raw-bytes container."""
        return self._dtype

    @property
    def shape(self) -> tuple[int, ...] | None:
        """Stored array shape, if the container recorded one."""
        return self._info.shape

    @property
    def itemsize(self) -> int:
        return 1 if self._dtype is None else self._dtype.itemsize

    def __len__(self) -> int:
        """Number of elements (bytes for raw-bytes containers)."""
        return self._info.original_len // self.itemsize

    # -- reads ------------------------------------------------------------

    def read(self, start: int | None = None, stop: int | None = None,
             *, errors: str = "raise"):
        """Decode elements ``[start, stop)`` (Python slice semantics).

        Returns a 1-D ndarray (or bytes for raw-bytes containers),
        byte-identical to the same slice of a full decompression.  Only
        the overlapping chunks are read and decoded.  With
        ``errors="salvage"`` returns ``(result, report)``.
        """
        self._check_open()
        n = len(self)
        a, b, _ = slice(start, stop).indices(n)
        b = max(a, b)
        size = self.itemsize
        if errors == "salvage":
            data, _, report = decompress_range_bytes(
                self._blob, a * size, b * size, workers=self._workers,
                executor=self._executor, errors="salvage",
            )
            return self._wrap(data), report
        data, _ = decompress_range_bytes(
            self._blob, a * size, b * size, workers=self._workers,
            executor=self._executor, errors=errors,
        )
        return self._wrap(data)

    def __getitem__(self, key):
        self._check_open()
        n = len(self)
        if isinstance(key, slice):
            a, b, step = key.indices(n)
            if step == 1:
                return self.read(a, b)
            indices = range(a, b, step)
            if len(indices) == 0:
                return self._wrap(b"")
            lo = min(indices[0], indices[-1])
            hi = max(indices[0], indices[-1]) + 1
            block = self.read(lo, hi)
            return block[a - lo :: step] if step > 0 else block[a - lo :: step]
        index = int(key)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"index {key} out of range for {n} elements")
        single = self.read(index, index + 1)
        return single[0]

    def _wrap(self, data: bytes):
        return data if self._dtype is None else np.frombuffer(data, dtype=self._dtype)

    # -- lifecycle --------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("reader is closed")

    def close(self) -> None:
        """Release the mapping / file handle; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._map is not None:
            self._map.close()
            self._map = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> ContainerReader:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"{len(self)} elements"
        return f"ContainerReader({state}, dtype={self._dtype})"
