"""Recursive bitmap compression shared by the RZE, RAZE, and RARE stages.

RZE's bitmap "typically starts with mostly '0' bits and ends with mostly
'1' bits" (paper §3.2), so its packed byte form contains long runs of
repeating bytes.  The paper compresses it by *repeated repeating-byte
elimination*: build a second bitmap marking which bytes differ from their
predecessor, keep only the differing bytes, and recurse on the second
bitmap.  A 16384-bit bitmap shrinks 16384 -> 2048 -> 256 -> 32 bits over
three levels; only the final 32 bits and the non-repeating bytes of each
level are emitted.

The functions here implement that scheme for bitmaps of any length (the
final chunk of an input can be short).  Recursion stops after
``max_levels`` rounds or once the bitmap fits in four bytes.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import CorruptDataError
from repro.stages._frame import Reader, Writer

MAX_LEVELS = 3


def _repeat_mask(level_bytes: np.ndarray) -> np.ndarray:
    """Boolean mask: True where a byte differs from its predecessor.

    The byte before position 0 is defined to be 0, so a leading zero byte
    counts as repeating and is dropped (and regenerated on decode).
    """
    prev = np.empty_like(level_bytes)
    prev[0] = 0
    prev[1:] = level_bytes[:-1]
    return level_bytes != prev


def _forward_fill(mask: np.ndarray, kept: np.ndarray) -> np.ndarray:
    """Rebuild a byte level: positions with mask take the next kept byte,
    other positions repeat the previous reconstructed byte (initially 0)."""
    counts = np.cumsum(mask)
    if counts.size and counts[-1] != len(kept):
        raise CorruptDataError("bitmap level kept-byte count mismatch")
    out = np.zeros(len(mask), dtype=np.uint8)
    has_prior = counts > 0
    out[has_prior] = kept[counts[has_prior] - 1]
    return out


def _check_bitmap_pad(level: np.ndarray, used_bits: int) -> None:
    """Reject nonzero padding bits in the final byte of a packed bitmap.

    :func:`compress_bitmap` zero-pads every level (``np.packbits``), so a
    set padding bit can only come from corruption — and would otherwise be
    silently discarded by the ``[:used_bits]`` slice on decode.
    """
    pad_bits = len(level) * 8 - used_bits
    if pad_bits and int(level[-1]) & ((1 << pad_bits) - 1):
        raise CorruptDataError(
            f"nonzero padding bits in packed bitmap level ({used_bits} bits used)"
        )


def compress_bitmap(bits: np.ndarray, max_levels: int = MAX_LEVELS) -> bytes:
    """Compress a boolean bit array via repeated repeating-byte elimination.

    Returns a self-describing payload (the original bit count is *not*
    stored and must be supplied to :func:`decompress_bitmap`).
    """
    level = np.packbits(bits)
    kept_per_level: list[np.ndarray] = []
    levels = 0
    while levels < max_levels and len(level) > 4:
        mask = _repeat_mask(level)
        kept_per_level.append(level[mask])
        level = np.packbits(mask)
        levels += 1
    writer = Writer()
    writer.u8(levels)
    writer.raw(level.tobytes())  # length is derivable from the bit count
    for kept in reversed(kept_per_level):
        writer.u32(len(kept))
        writer.raw(kept.tobytes())
    return writer.getvalue()


def decompress_bitmap(reader: Reader, bit_count: int) -> np.ndarray:
    """Inverse of :func:`compress_bitmap`; reads from ``reader`` in place.

    Returns a boolean array of exactly ``bit_count`` elements.
    """
    levels = reader.u8()
    if levels > 8:
        raise CorruptDataError(f"implausible bitmap recursion depth {levels}")
    # Sizes of the packed byte arrays at each level, outermost first.
    sizes = [(bit_count + 7) // 8]
    for _ in range(levels):
        sizes.append((sizes[-1] + 7) // 8)
    level = np.frombuffer(reader.raw(sizes[-1]), dtype=np.uint8)
    for depth in range(levels - 1, -1, -1):
        n_kept = reader.u32()
        kept = np.frombuffer(reader.raw(n_kept), dtype=np.uint8)
        _check_bitmap_pad(level, sizes[depth])
        mask = np.unpackbits(level)[: sizes[depth]].view(np.bool_)
        level = _forward_fill(mask, kept)
    _check_bitmap_pad(level, bit_count)
    return np.unpackbits(level)[:bit_count].view(np.bool_)


def compressed_bitmap_size(bits: np.ndarray, max_levels: int = MAX_LEVELS) -> int:
    """Exact encoded size in bytes without materialising the payload twice."""
    return len(compress_bitmap(bits, max_levels))


def compress_bitmap_batch(bits2d: np.ndarray, max_levels: int = MAX_LEVELS) -> list[bytes]:
    """Per-row :func:`compress_bitmap` of a ``(n_rows, bit_count)`` grid.

    The recursion depth and every level's packed size depend only on the
    bit count, which is shared by all rows — so each level runs as one 2D
    ``packbits``/repeat-mask pass and only the kept bytes differ per row.
    Output is byte-identical to compressing each row on its own.
    """
    n_rows = len(bits2d)
    level2d = np.packbits(bits2d, axis=1)
    kept_levels: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    levels = 0
    while levels < max_levels and level2d.shape[1] > 4:
        prev = np.empty_like(level2d)
        prev[:, 0] = 0
        prev[:, 1:] = level2d[:, :-1]
        mask2d = level2d != prev
        counts = mask2d.sum(axis=1)
        bounds = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        kept_levels.append((level2d[mask2d], counts, bounds))
        level2d = np.packbits(mask2d, axis=1)
        levels += 1
    final = level2d.tobytes()
    final_size = level2d.shape[1]
    prefix = struct.pack("<B", levels)
    out: list[bytes] = []
    for r in range(n_rows):
        parts = [prefix, final[r * final_size : (r + 1) * final_size]]
        for kept_flat, counts, bounds in reversed(kept_levels):
            parts.append(struct.pack("<I", int(counts[r])))
            parts.append(kept_flat[bounds[r] : bounds[r + 1]].tobytes())
        out.append(b"".join(parts))
    return out


def decompress_bitmap_batch(readers: list[Reader], bit_count: int) -> np.ndarray:
    """Per-reader :func:`decompress_bitmap`, vectorised across the batch.

    Every reader must sit at a bitmap compressed from ``bit_count`` bits;
    valid payloads then share the recursion depth and per-level sizes, so
    the unpack/forward-fill sweeps run once over a 2D grid.  Any
    structural mismatch raises :class:`CorruptDataError` — callers fall
    back to the per-chunk path, which reproduces the serial error.
    """
    n_rows = len(readers)
    depths = [reader.u8() for reader in readers]
    levels = depths[0] if depths else 0
    if any(d != levels for d in depths):
        raise CorruptDataError("bitmap recursion depth mismatch across batch")
    if levels > 8:
        raise CorruptDataError(f"implausible bitmap recursion depth {levels}")
    sizes = [(bit_count + 7) // 8]
    for _ in range(levels):
        sizes.append((sizes[-1] + 7) // 8)
    level2d = np.empty((n_rows, sizes[-1]), dtype=np.uint8)
    for r, reader in enumerate(readers):
        level2d[r] = np.frombuffer(reader.raw(sizes[-1]), dtype=np.uint8)
    for depth in range(levels - 1, -1, -1):
        n_kept = np.empty(n_rows, dtype=np.int64)
        kept_rows = []
        for r, reader in enumerate(readers):
            n_kept[r] = reader.u32()
            kept_rows.append(np.frombuffer(reader.raw(int(n_kept[r])), dtype=np.uint8))
        offsets = np.zeros(n_rows, dtype=np.int64)
        np.cumsum(n_kept[:-1], out=offsets[1:])
        kept_flat = np.concatenate(kept_rows) if kept_rows else np.zeros(0, np.uint8)
        _check_bitmap_pad_rows(level2d, sizes[depth])
        mask2d = np.unpackbits(level2d, axis=1)[:, : sizes[depth]].view(np.bool_)
        counts2d = np.cumsum(mask2d, axis=1)
        totals = counts2d[:, -1] if mask2d.shape[1] else np.zeros(n_rows, np.int64)
        if np.any(totals != n_kept):
            raise CorruptDataError("bitmap level kept-byte count mismatch")
        out2d = np.zeros(mask2d.shape, dtype=np.uint8)
        has_prior = counts2d > 0
        idx = counts2d - 1 + offsets[:, None]
        out2d[has_prior] = kept_flat[idx[has_prior]]
        level2d = out2d
    _check_bitmap_pad_rows(level2d, bit_count)
    return np.unpackbits(level2d, axis=1)[:, :bit_count].view(np.bool_)


def _check_bitmap_pad_rows(level2d: np.ndarray, used_bits: int) -> None:
    """Batch form of :func:`_check_bitmap_pad` (any bad row fails the batch)."""
    pad_bits = level2d.shape[1] * 8 - used_bits
    if pad_bits and level2d.shape[1] and np.any(
        level2d[:, -1] & np.uint8((1 << pad_bits) - 1)
    ):
        raise CorruptDataError(
            f"nonzero padding bits in packed bitmap level ({used_bits} bits used)"
        )
