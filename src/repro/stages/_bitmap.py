"""Recursive bitmap compression shared by the RZE, RAZE, and RARE stages.

RZE's bitmap "typically starts with mostly '0' bits and ends with mostly
'1' bits" (paper §3.2), so its packed byte form contains long runs of
repeating bytes.  The paper compresses it by *repeated repeating-byte
elimination*: build a second bitmap marking which bytes differ from their
predecessor, keep only the differing bytes, and recurse on the second
bitmap.  A 16384-bit bitmap shrinks 16384 -> 2048 -> 256 -> 32 bits over
three levels; only the final 32 bits and the non-repeating bytes of each
level are emitted.

The functions here implement that scheme for bitmaps of any length (the
final chunk of an input can be short).  Recursion stops after
``max_levels`` rounds or once the bitmap fits in four bytes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CorruptDataError
from repro.stages._frame import Reader, Writer

MAX_LEVELS = 3


def _repeat_mask(level_bytes: np.ndarray) -> np.ndarray:
    """Boolean mask: True where a byte differs from its predecessor.

    The byte before position 0 is defined to be 0, so a leading zero byte
    counts as repeating and is dropped (and regenerated on decode).
    """
    prev = np.empty_like(level_bytes)
    prev[0] = 0
    prev[1:] = level_bytes[:-1]
    return level_bytes != prev


def _forward_fill(mask: np.ndarray, kept: np.ndarray) -> np.ndarray:
    """Rebuild a byte level: positions with mask take the next kept byte,
    other positions repeat the previous reconstructed byte (initially 0)."""
    counts = np.cumsum(mask)
    if counts.size and counts[-1] != len(kept):
        raise CorruptDataError("bitmap level kept-byte count mismatch")
    out = np.zeros(len(mask), dtype=np.uint8)
    has_prior = counts > 0
    out[has_prior] = kept[counts[has_prior] - 1]
    return out


def _check_bitmap_pad(level: np.ndarray, used_bits: int) -> None:
    """Reject nonzero padding bits in the final byte of a packed bitmap.

    :func:`compress_bitmap` zero-pads every level (``np.packbits``), so a
    set padding bit can only come from corruption — and would otherwise be
    silently discarded by the ``[:used_bits]`` slice on decode.
    """
    pad_bits = len(level) * 8 - used_bits
    if pad_bits and int(level[-1]) & ((1 << pad_bits) - 1):
        raise CorruptDataError(
            f"nonzero padding bits in packed bitmap level ({used_bits} bits used)"
        )


def compress_bitmap(bits: np.ndarray, max_levels: int = MAX_LEVELS) -> bytes:
    """Compress a boolean bit array via repeated repeating-byte elimination.

    Returns a self-describing payload (the original bit count is *not*
    stored and must be supplied to :func:`decompress_bitmap`).
    """
    level = np.packbits(bits)
    kept_per_level: list[np.ndarray] = []
    levels = 0
    while levels < max_levels and len(level) > 4:
        mask = _repeat_mask(level)
        kept_per_level.append(level[mask])
        level = np.packbits(mask)
        levels += 1
    writer = Writer()
    writer.u8(levels)
    writer.raw(level.tobytes())  # length is derivable from the bit count
    for kept in reversed(kept_per_level):
        writer.u32(len(kept))
        writer.raw(kept.tobytes())
    return writer.getvalue()


def decompress_bitmap(reader: Reader, bit_count: int) -> np.ndarray:
    """Inverse of :func:`compress_bitmap`; reads from ``reader`` in place.

    Returns a boolean array of exactly ``bit_count`` elements.
    """
    levels = reader.u8()
    if levels > 8:
        raise CorruptDataError(f"implausible bitmap recursion depth {levels}")
    # Sizes of the packed byte arrays at each level, outermost first.
    sizes = [(bit_count + 7) // 8]
    for _ in range(levels):
        sizes.append((sizes[-1] + 7) // 8)
    level = np.frombuffer(reader.raw(sizes[-1]), dtype=np.uint8)
    for depth in range(levels - 1, -1, -1):
        n_kept = reader.u32()
        kept = np.frombuffer(reader.raw(n_kept), dtype=np.uint8)
        _check_bitmap_pad(level, sizes[depth])
        mask = np.unpackbits(level)[: sizes[depth]].view(np.bool_)
        level = _forward_fill(mask, kept)
    _check_bitmap_pad(level, bit_count)
    return np.unpackbits(level)[:bit_count].view(np.bool_)


def compressed_bitmap_size(bits: np.ndarray, max_levels: int = MAX_LEVELS) -> int:
    """Exact encoded size in bytes without materialising the payload twice."""
    return len(compress_bitmap(bits, max_levels))
