"""Adaptive top-``k`` selection shared by the RAZE and RARE stages.

Paper §3.2, Figure 7: rather than trying all 64 splits by brute force,
the stage builds a histogram of per-value leading-zero (RAZE) or
leading-common-bit (RARE) counts.  A suffix sum over the bins yields, for
every candidate ``k``, how many values have their entire top-``k`` piece
eliminated — because every value with ``m`` qualifying leading bits also
qualifies for ``m-1``, ``m-2``, ...  From those counts a closed-form
compressed size is computed for each ``k`` and the minimum is selected.

The size model matches the stage's actual output layout: one bitmap bit
per value, ``k`` bits for every value whose top piece must be kept, and
``word_bits - k`` bottom bits for every value.  ``k == 0`` disables the
split (the stage stores plain words).
"""

from __future__ import annotations

import numpy as np

from repro.bitpack import backend as _backend


def eliminated_counts(leading: np.ndarray, word_bits: int) -> np.ndarray:
    """``counts[k]`` = number of values whose top-``k`` piece is eliminated.

    ``leading`` holds per-value leading-zero (RAZE) or leading-common-bit
    (RARE) counts.  A value with ``m`` such bits is eliminated for every
    ``k <= m``, so ``counts`` is the suffix sum of the histogram.
    """
    hist = np.bincount(np.asarray(leading, dtype=np.int64), minlength=word_bits + 1)
    return np.cumsum(hist[::-1])[::-1]


def choose_k(leading: np.ndarray, n: int, word_bits: int) -> int:
    """The ``k`` minimising the modelled compressed size of the chunk."""
    if n == 0:
        return 0
    counts = eliminated_counts(leading, word_bits)
    ks = np.arange(1, word_bits + 1, dtype=np.int64)
    # bitmap (n bits) + kept top pieces (k bits each) + all bottom pieces.
    cost = n + (n - counts[1:]) * ks + n * (word_bits - ks)
    cost_disabled = n * word_bits
    best = int(np.argmin(cost))
    if cost[best] >= cost_disabled:
        return 0
    return best + 1


def eliminated_counts_rows(leading2d: np.ndarray, word_bits: int) -> np.ndarray:
    """Per-row :func:`eliminated_counts` of an ``(n_rows, n)`` grid.

    Dispatches to the active kernel backend; the numpy reference below
    replaces the per-row histogram with one flattened ``bincount`` (rows
    offset into disjoint bins) and runs the suffix sum along the bin
    axis.
    """
    return _backend.kernel("eliminated_counts_rows")(leading2d, word_bits)


def choose_k_rows(leading2d: np.ndarray, n: int, word_bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row :func:`choose_k` plus the modelled cost at the chosen ``k``.

    Returns ``(k, cost)`` arrays over the rows; ``cost`` is the same
    number the serial planner reports (``n * word_bits`` when ``k == 0``),
    so mode selection against other plans stays bit-for-bit identical.
    Dispatches to the active kernel backend.
    """
    return _backend.kernel("choose_k_rows")(leading2d, n, word_bits)


def _eliminated_counts_rows_numpy(leading2d: np.ndarray, word_bits: int) -> np.ndarray:
    """The numpy reference batched histogram."""
    n_rows = len(leading2d)
    bins = word_bits + 1
    offset = np.arange(n_rows, dtype=np.int64)[:, None] * bins
    flat = np.asarray(leading2d, dtype=np.int64) + offset
    hist = np.bincount(flat.reshape(-1), minlength=n_rows * bins)
    hist = hist[: n_rows * bins].reshape(n_rows, bins)
    return np.cumsum(hist[:, ::-1], axis=1)[:, ::-1]


def _choose_k_rows_numpy(
    leading2d: np.ndarray, n: int, word_bits: int
) -> tuple[np.ndarray, np.ndarray]:
    """The numpy reference batched cost argmin."""
    n_rows = len(leading2d)
    if n == 0:
        return np.zeros(n_rows, np.int64), np.zeros(n_rows, np.int64)
    counts = _eliminated_counts_rows_numpy(leading2d, word_bits)
    ks = np.arange(1, word_bits + 1, dtype=np.int64)
    cost = n + (n - counts[:, 1:]) * ks + n * (word_bits - ks)
    cost_disabled = np.int64(n) * word_bits
    best = np.argmin(cost, axis=1)
    best_cost = cost[np.arange(n_rows), best]
    disabled = best_cost >= cost_disabled
    k = np.where(disabled, 0, best + 1)
    return k, np.where(disabled, cost_disabled, best_cost)
