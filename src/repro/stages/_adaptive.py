"""Adaptive top-``k`` selection shared by the RAZE and RARE stages.

Paper §3.2, Figure 7: rather than trying all 64 splits by brute force,
the stage builds a histogram of per-value leading-zero (RAZE) or
leading-common-bit (RARE) counts.  A suffix sum over the bins yields, for
every candidate ``k``, how many values have their entire top-``k`` piece
eliminated — because every value with ``m`` qualifying leading bits also
qualifies for ``m-1``, ``m-2``, ...  From those counts a closed-form
compressed size is computed for each ``k`` and the minimum is selected.

The size model matches the stage's actual output layout: one bitmap bit
per value, ``k`` bits for every value whose top piece must be kept, and
``word_bits - k`` bottom bits for every value.  ``k == 0`` disables the
split (the stage stores plain words).
"""

from __future__ import annotations

import numpy as np


def eliminated_counts(leading: np.ndarray, word_bits: int) -> np.ndarray:
    """``counts[k]`` = number of values whose top-``k`` piece is eliminated.

    ``leading`` holds per-value leading-zero (RAZE) or leading-common-bit
    (RARE) counts.  A value with ``m`` such bits is eliminated for every
    ``k <= m``, so ``counts`` is the suffix sum of the histogram.
    """
    hist = np.bincount(np.asarray(leading, dtype=np.int64), minlength=word_bits + 1)
    return np.cumsum(hist[::-1])[::-1]


def choose_k(leading: np.ndarray, n: int, word_bits: int) -> int:
    """The ``k`` minimising the modelled compressed size of the chunk."""
    if n == 0:
        return 0
    counts = eliminated_counts(leading, word_bits)
    ks = np.arange(1, word_bits + 1, dtype=np.int64)
    # bitmap (n bits) + kept top pieces (k bits each) + all bottom pieces.
    cost = n + (n - counts[1:]) * ks + n * (word_bits - ks)
    cost_disabled = n * word_bits
    best = int(np.argmin(cost))
    if cost[best] >= cost_disabled:
        return 0
    return best + 1
