"""Shared plumbing for the stages' batched (2D) execution paths.

The batched stage API stacks equal-length chunks into an
``(n_chunks, words_per_chunk)`` grid so each kernel runs once per stage
instead of once per chunk.  Chunks of other lengths (the ragged final
chunk of an input, or variable-length intermediate payloads) fall back to
the per-chunk code path — batching is a pure execution detail and must
never change wire bytes.
"""

from __future__ import annotations

import numpy as np


def length_groups(chunks) -> dict[int, list[int]]:
    """Chunk positions grouped by byte length, preserving input order."""
    groups: dict[int, list[int]] = {}
    for i, chunk in enumerate(chunks):
        groups.setdefault(len(chunk), []).append(i)
    return groups


def stack_rows(chunks, indices: list[int], length: int) -> np.ndarray:
    """Copy the selected equal-length chunks into a ``(len(indices), length)``
    uint8 grid (one contiguous buffer the 2D kernels can view as words)."""
    rows = np.empty((len(indices), length), dtype=np.uint8)
    for row, i in enumerate(indices):
        rows[row] = np.frombuffer(chunks[i], dtype=np.uint8)
    return rows


def split_rows(flat: np.ndarray, counts: np.ndarray) -> list[np.ndarray]:
    """Split a row-major extraction back into per-row arrays.

    ``flat`` holds the surviving elements of every row concatenated in row
    order; ``counts[r]`` is row ``r``'s share.
    """
    bounds = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    return [flat[bounds[r] : bounds[r + 1]] for r in range(len(counts))]
