"""BIT: bit transposition (shuffle) across a chunk's words.

The second stage of SPratio (paper §3.2, Figure 4).  After DIFFMS, most
words contain many leading zero bits; transposing the chunk's bit matrix
groups all most-significant bits together, turning those zeros into long
zero-byte runs that the following RZE stage eliminates.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.bitpack import (
    bit_transpose,
    bit_transpose_batch,
    bit_untranspose,
    bit_untranspose_batch,
    words_to_bytes,
)
from repro.bitpack.bytes_util import words_from_bytes
from repro.stages import ByteLike, Stage
from repro.stages._batch import length_groups, stack_rows
from repro.stages._frame import Reader, Writer


class BitTranspose(Stage):
    """Whole-chunk bit transposition at 32- or 64-bit word granularity."""

    name = "bit"

    def __init__(self, word_bits: int = 32) -> None:
        if word_bits not in (32, 64):
            raise ValueError("BIT operates at 32- or 64-bit granularity")
        self.word_bits = word_bits

    def encode(self, data: ByteLike) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        writer = Writer()
        writer.u32(len(words))
        writer.u8(len(tail))
        writer.raw(tail)
        writer.raw(bit_transpose(words, self.word_bits))
        return writer.getvalue()

    def decode(self, data: ByteLike) -> bytes:
        reader = Reader(data)
        n_words = reader.u32()
        tail = reader.raw(reader.u8())
        words = bit_untranspose(reader.rest(), n_words, self.word_bits)
        return words_to_bytes(words, tail)

    # -- batched execution ------------------------------------------------

    def encode_batch(self, chunks: list) -> list[bytes]:
        out: list[bytes | None] = [None] * len(chunks)
        word_bytes = self.word_bits // 8
        for length, indices in length_groups(chunks).items():
            n_words = length // word_bytes
            if (
                len(indices) < 2
                or length == 0
                or length % word_bytes
                or n_words % 8
            ):
                for i in indices:
                    out[i] = self.encode(chunks[i])
                continue
            words2d = stack_rows(chunks, indices, length).view(
                np.dtype(f"<u{word_bytes}")
            )
            prefix = struct.pack("<IB", n_words, 0)
            for row, blob in enumerate(
                bit_transpose_batch(words2d, self.word_bits)
            ):
                out[indices[row]] = prefix + blob
        return out

    def decode_batch(self, payloads: list) -> list[bytes]:
        out: list[bytes | None] = [None] * len(payloads)
        word_bytes = self.word_bits // 8
        for length, indices in length_groups(payloads).items():
            eligible: dict[int, list[int]] = {}
            if len(indices) >= 2 and length >= 5:
                for i in indices:
                    n_words, tail_len = struct.unpack_from("<IB", payloads[i], 0)
                    if (
                        tail_len == 0
                        and n_words
                        and n_words % 8 == 0
                        and length == 5 + n_words * word_bytes
                    ):
                        eligible.setdefault(n_words, []).append(i)
            for n_words, members in list(eligible.items()):
                if len(members) < 2:
                    del eligible[n_words]
            batched = {i for members in eligible.values() for i in members}
            for i in indices:
                if i not in batched:
                    out[i] = self.decode(payloads[i])
            for n_words, members in eligible.items():
                bufs = stack_rows(payloads, members, length)[:, 5:]
                words2d = bit_untranspose_batch(bufs, n_words, self.word_bits)
                blob = words2d.tobytes()
                for row, i in enumerate(members):
                    out[i] = blob[row * (length - 5) : (row + 1) * (length - 5)]
        return out
