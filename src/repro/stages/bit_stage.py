"""BIT: bit transposition (shuffle) across a chunk's words.

The second stage of SPratio (paper §3.2, Figure 4).  After DIFFMS, most
words contain many leading zero bits; transposing the chunk's bit matrix
groups all most-significant bits together, turning those zeros into long
zero-byte runs that the following RZE stage eliminates.
"""

from __future__ import annotations

from repro.bitpack import bit_transpose, bit_untranspose, words_to_bytes
from repro.bitpack.bytes_util import words_from_bytes
from repro.stages import ByteLike, Stage
from repro.stages._frame import Reader, Writer


class BitTranspose(Stage):
    """Whole-chunk bit transposition at 32- or 64-bit word granularity."""

    name = "bit"

    def __init__(self, word_bits: int = 32) -> None:
        if word_bits not in (32, 64):
            raise ValueError("BIT operates at 32- or 64-bit granularity")
        self.word_bits = word_bits

    def encode(self, data: ByteLike) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        writer = Writer()
        writer.u32(len(words))
        writer.u8(len(tail))
        writer.raw(tail)
        writer.raw(bit_transpose(words, self.word_bits))
        return writer.getvalue()

    def decode(self, data: ByteLike) -> bytes:
        reader = Reader(data)
        n_words = reader.u32()
        tail = reader.raw(reader.u8())
        words = bit_untranspose(reader.rest(), n_words, self.word_bits)
        return words_to_bytes(words, tail)
