"""Tiny binary framing helpers shared by the variable-length stages.

Stages whose output length depends on the data (MPLG, RZE, RAZE, RARE,
FCM) embed small headers so that ``decode`` is self-describing.  These
helpers keep those headers uniform: little-endian fixed-width integers
read and written through a cursor.

Both sides are zero-copy: :class:`Reader` accepts any byte buffer
(``bytes`` or a ``memoryview`` into a container) and hands out subviews,
and :class:`Writer` keeps the slices it is given, deferring the single
concatenation to :meth:`Writer.getvalue`.
"""

from __future__ import annotations

import struct

from repro.errors import CorruptDataError


class Writer:
    """Accumulates header fields and payload slices into one bytes object."""

    def __init__(self) -> None:
        self._parts: list = []

    def u8(self, value: int) -> None:
        self._parts.append(struct.pack("<B", value))

    def u16(self, value: int) -> None:
        self._parts.append(struct.pack("<H", value))

    def u32(self, value: int) -> None:
        self._parts.append(struct.pack("<I", value))

    def u64(self, value: int) -> None:
        self._parts.append(struct.pack("<Q", value))

    def raw(self, data) -> None:
        """Append a byte buffer without copying.

        The buffer must stay valid (and unmutated) until
        :meth:`getvalue` — true for every caller, which appends either
        immutable bytes or views into the immutable input payload.
        """
        self._parts.append(data)

    def getvalue(self) -> bytes:
        # bytes.join accepts any buffer-protocol object, so deferred
        # views are concatenated here in one pass.
        return b"".join(self._parts)


class Reader:
    """Cursor over a stage payload; raises :class:`CorruptDataError` on truncation."""

    def __init__(self, data) -> None:
        self._data = data
        self._pos = 0

    def _take(self, n: int):
        end = self._pos + n
        if end > len(self._data):
            raise CorruptDataError(
                f"truncated stage payload: wanted {n} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        out = self._data[self._pos : end]
        self._pos = end
        return out

    def u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def raw(self, n: int):
        """The next ``n`` bytes, as a zero-copy slice of the input buffer."""
        return self._take(n)

    def rest(self):
        out = self._data[self._pos :]
        self._pos = len(self._data)
        return out

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def expect_exhausted(self) -> None:
        if self._pos != len(self._data):
            raise CorruptDataError(
                f"{len(self._data) - self._pos} unexpected trailing bytes in stage payload"
            )
