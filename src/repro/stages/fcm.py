"""FCM: the Finite Context Method transformation (first stage of DPratio).

Paper §3.2, Figure 6.  FPC-style hash-table prediction is untenable on a
GPU (two tables per thread), so the paper replaces it with a sort-based
equivalent: for every input word, form the pair ``(hash of the 3 prior
words, index)`` and sort the pairs.  Pairs with equal hashes — i.e. equal
recent contexts — become adjacent, with indices in increasing order.  A
pair *matches* when one of the 4 preceding pairs in sorted order has the
same hash **and** refers to the same word value.

The output is two scalar arrays in original input order, concatenated:

* the *value* array — the input word where no match was found, else 0;
* the *distance* array — 0 where no match, else the (positive) distance
  back to the matched occurrence.

Together they double the data volume but are far more compressible: half
the entries are zero and repeated doubles become small integer distances.

Unlike every other stage, FCM is global — it runs over the whole input
before chunking (paper §3: "Except for FCM, all stages ... operate on
chunks of 16 kilobytes").

Decoding follows match chains with pointer doubling — the parallel
union-find "find" the paper describes: each element either holds its
value or points ``distance`` positions back; repeatedly replacing every
pointer by its target's pointer resolves all chains in O(log n) sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.bitpack import words_from_bytes, words_to_bytes
from repro.errors import CorruptDataError
from repro.stages import ByteLike, Stage
from repro.stages._frame import Writer

#: How many preceding sorted pairs are inspected for a match (paper: 4).
MATCH_WINDOW = 4

_MIX1 = np.uint64(0x9E3779B97F4A7C15)
_MIX2 = np.uint64(0xC2B2AE3D27D4EB4F)
_MIX3 = np.uint64(0x165667B19E3779F9)


def _context_hash(words: np.ndarray) -> np.ndarray:
    """64-bit hash of the three words preceding each position (0-padded)."""
    n = len(words)
    prior1 = np.zeros(n, dtype=np.uint64)
    prior2 = np.zeros(n, dtype=np.uint64)
    prior3 = np.zeros(n, dtype=np.uint64)
    prior1[1:] = words[:-1]
    prior2[2:] = words[:-2]
    prior3[3:] = words[:-3]
    h = prior1 * _MIX1 ^ prior2 * _MIX2 ^ prior3 * _MIX3
    # Final avalanche so nearby contexts do not collide systematically.
    h ^= h >> np.uint64(29)
    h *= _MIX1
    h ^= h >> np.uint64(32)
    return h


class FCMStage(Stage):
    """Sort-based repeated-value detection for double-precision words."""

    name = "fcm"
    word_bits = 64

    def __init__(self, match_window: int = MATCH_WINDOW, hash_fn=None) -> None:
        """``hash_fn`` maps the word array to per-position context hashes;
        injectable so the paper's Figure 6 worked example (which uses
        simplified hashes) can be tested verbatim."""
        if match_window < 1:
            raise ValueError("match window must be at least 1")
        self.match_window = match_window
        self.hash_fn = hash_fn or _context_hash

    def encode(self, data: ByteLike) -> bytes:
        # The frame metadata lives in a TRAILER, not a header: the output
        # feeds the chunked DIFFMS stage, and a leading header would shift
        # every 64-bit word off its natural alignment inside the chunks.
        words, tail = words_from_bytes(data, 64)
        n = len(words)
        values, distances = self._find_matches(words)
        writer = Writer()
        writer.raw(words_to_bytes(values))
        writer.raw(words_to_bytes(distances))
        writer.raw(tail)
        writer.u8(len(tail))
        writer.u64(n)
        return writer.getvalue()

    @staticmethod
    def split_payload(payload: bytes) -> tuple[np.ndarray, np.ndarray, bytes]:
        """Parse an encoded payload into (values, distances, tail).

        Shared by the decoder and by white-box tests.
        """
        if len(payload) < 9:
            raise CorruptDataError("FCM payload shorter than its trailer")
        n = int.from_bytes(payload[-8:], "little")
        tail_len = payload[-9]
        expected = 16 * n + tail_len + 9
        if len(payload) != expected:
            raise CorruptDataError(
                f"FCM payload length {len(payload)} does not match trailer "
                f"(expected {expected})"
            )
        values = np.frombuffer(payload, dtype="<u8", count=n)
        distances = np.frombuffer(payload, dtype="<u8", count=n, offset=8 * n)
        tail = payload[16 * n : 16 * n + tail_len]
        return values, distances, tail

    def _find_matches(self, words: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        n = len(words)
        values = words.copy()
        distances = np.zeros(n, dtype=np.uint64)
        if n == 0:
            return values, distances
        hashes = self.hash_fn(words)
        order = np.argsort(hashes, kind="stable")  # ties keep index order
        sorted_hashes = hashes[order]
        sorted_words = words[order]
        matched = np.zeros(n, dtype=bool)
        match_source = np.zeros(n, dtype=np.int64)
        for offset in range(1, self.match_window + 1):
            same = (sorted_hashes[offset:] == sorted_hashes[:-offset]) & (
                sorted_words[offset:] == sorted_words[:-offset]
            )
            fresh = same & ~matched[offset:]
            matched[offset:] |= fresh
            # Record the *input* index of the matched earlier occurrence.
            idx = np.nonzero(fresh)[0] + offset
            match_source[idx] = order[idx - offset]
        matched_positions = order[matched]
        sources = match_source[matched]
        values[matched_positions] = 0
        distances[matched_positions] = (matched_positions - sources).astype(np.uint64)
        return values, distances

    def decode(self, data: ByteLike) -> bytes:
        values, distances, tail = self.split_payload(data)
        n = len(values)
        if n == 0:
            return bytes(tail)
        dist = distances.astype(np.int64)
        if np.any(dist < 0) or np.any(dist > np.arange(n)):
            raise CorruptDataError("FCM distance points before the start of the data")
        if not dist.any():
            # No matches recorded — every word is its own root, so the
            # pointer-doubling sweep would be an identity walk.
            words = values
        else:
            # Parallel union-find "find" via pointer doubling.  The two
            # buffers alternate roles so each sweep reuses scratch space
            # instead of allocating a fresh `grand` array.
            parent = np.arange(n, dtype=np.int64)
            parent -= dist
            scratch = np.empty_like(parent)
            while True:
                np.take(parent, parent, out=scratch)
                if np.array_equal(scratch, parent):
                    break
                parent, scratch = scratch, parent
            words = values[parent]
        return words_to_bytes(np.ascontiguousarray(words, dtype="<u8"), tail)

    def max_encoded_len(self, input_len: int) -> int:
        # encode emits 16*n + tail + 9 bytes for 8*n + tail input bytes,
        # so the output never exceeds twice the input plus the trailer.
        return 2 * input_len + 9

    def decode_salvage(
        self, data: ByteLike, damaged_ranges
    ) -> tuple[bytes, tuple[tuple[int, int], ...]]:
        """Damage-aware inverse: track corruption through the match chains.

        ``damaged_ranges`` marks zero-filled spans of the encoded payload.
        A word is untrustworthy when its value/distance entries overlap a
        damaged span *or* its match chain passes through such a word —
        damage only propagates forward (distances point backward), so
        everything whose chain avoids the zero-filled spans is recovered
        bit-exactly.  The damage mask rides the same pointer-doubling
        sweep the normal decode uses.
        """
        values, distances, tail = self.split_payload(data)
        n = len(values)
        mask = np.zeros(len(data), dtype=bool)
        for start, end in damaged_ranges:
            mask[max(0, int(start)) : max(0, int(end))] = True
        if mask[16 * n :].any():
            # Tail or trailer damaged: the framing itself cannot be
            # trusted even though it happened to parse.
            raise CorruptDataError("FCM tail/trailer overlaps a damaged range")
        if n == 0:
            return bytes(tail), ()
        entry_damaged = (
            mask[: 8 * n].reshape(n, 8).any(axis=1)
            | mask[8 * n : 16 * n].reshape(n, 8).any(axis=1)
        )
        dist = distances.astype(np.int64)
        bad = (dist < 0) | (dist > np.arange(n))
        if bad.any():
            # Zero-filled entries decode as distance 0, so out-of-range
            # distances are undetected corruption: taint, don't abort.
            entry_damaged |= bad
            dist = np.where(bad, 0, dist)
        parent = np.arange(n, dtype=np.int64) - dist
        damaged = entry_damaged.copy()
        while True:
            damaged = damaged | damaged[parent]
            grand = parent[parent]
            if np.array_equal(grand, parent):
                break
            parent = grand
        words = values[parent]
        out = words_to_bytes(np.ascontiguousarray(words, dtype="<u8"), tail)
        # Collapse consecutive damaged words into byte ranges.
        idx = np.nonzero(damaged)[0]
        ranges: list[tuple[int, int]] = []
        if len(idx):
            breaks = np.nonzero(np.diff(idx) > 1)[0]
            starts = np.concatenate(([0], breaks + 1))
            ends = np.concatenate((breaks, [len(idx) - 1]))
            ranges = [
                (int(idx[s]) * 8, (int(idx[e]) + 1) * 8)
                for s, e in zip(starts, ends)
            ]
        return out, tuple(ranges)
