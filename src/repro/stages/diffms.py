"""DIFFMS: modular difference coding + magnitude-sign conversion.

The first stage of SPspeed, SPratio, and DPspeed and the second stage of
DPratio (paper §3.1, Figure 2).  Each IEEE-754 word is treated as an
unsigned integer; the difference to the preceding word (modulo 2^w) turns
clustered exponents into values near zero, and the magnitude-sign
(zigzag) conversion folds negative differences into small positive words
with many leading zero bits.

The first word of each chunk is kept as-is (as if 0 preceded it), so
chunks stay independently decodable.  The transformation is length
preserving; trailing bytes that do not fill a word pass through.
"""

from __future__ import annotations

import numpy as np

from repro.bitpack import words_from_bytes, words_to_bytes, zigzag_decode, zigzag_encode
from repro.stages import ByteLike, Stage


class DiffMS(Stage):
    """Difference coding with representation change, at 32- or 64-bit grain."""

    name = "diffms"

    def __init__(self, word_bits: int = 32) -> None:
        if word_bits not in (32, 64):
            raise ValueError("DIFFMS operates at 32- or 64-bit granularity")
        self.word_bits = word_bits

    def encode(self, data: ByteLike) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        prev = np.empty_like(words)
        if len(words):
            prev[0] = 0
            prev[1:] = words[:-1]
        diff = words - prev  # unsigned wraparound == difference mod 2^w
        return words_to_bytes(zigzag_encode(diff, self.word_bits), tail)

    def decode(self, data: ByteLike) -> bytes:
        coded, tail = words_from_bytes(data, self.word_bits)
        diff = zigzag_decode(coded, self.word_bits)
        # The running sum inverts difference coding; uint cumsum wraps mod 2^w.
        words = np.cumsum(diff, dtype=diff.dtype)
        return words_to_bytes(words, tail)
