"""DIFFMS: modular difference coding + magnitude-sign conversion.

The first stage of SPspeed, SPratio, and DPspeed and the second stage of
DPratio (paper §3.1, Figure 2).  Each IEEE-754 word is treated as an
unsigned integer; the difference to the preceding word (modulo 2^w) turns
clustered exponents into values near zero, and the magnitude-sign
(zigzag) conversion folds negative differences into small positive words
with many leading zero bits.

The first word of each chunk is kept as-is (as if 0 preceded it), so
chunks stay independently decodable.  The transformation is length
preserving; trailing bytes that do not fill a word pass through.
"""

from __future__ import annotations

import numpy as np

from repro.bitpack import words_from_bytes, words_to_bytes, zigzag_decode, zigzag_encode
from repro.stages import ByteLike, Stage
from repro.stages._batch import length_groups, stack_rows


class DiffMS(Stage):
    """Difference coding with representation change, at 32- or 64-bit grain."""

    name = "diffms"

    def __init__(self, word_bits: int = 32) -> None:
        if word_bits not in (32, 64):
            raise ValueError("DIFFMS operates at 32- or 64-bit granularity")
        self.word_bits = word_bits

    def encode(self, data: ByteLike) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        prev = np.empty_like(words)
        if len(words):
            prev[0] = 0
            prev[1:] = words[:-1]
        diff = words - prev  # unsigned wraparound == difference mod 2^w
        return words_to_bytes(zigzag_encode(diff, self.word_bits), tail)

    def decode(self, data: ByteLike) -> bytes:
        coded, tail = words_from_bytes(data, self.word_bits)
        diff = zigzag_decode(coded, self.word_bits)
        # The running sum inverts difference coding; uint cumsum wraps mod 2^w.
        words = np.cumsum(diff, dtype=diff.dtype)
        return words_to_bytes(words, tail)

    # -- batched execution ------------------------------------------------

    def encode_batch(self, chunks: list) -> list[bytes]:
        out: list[bytes | None] = [None] * len(chunks)
        for length, indices in length_groups(chunks).items():
            if len(indices) < 2 or length == 0 or length % (self.word_bits // 8):
                for i in indices:
                    out[i] = self.encode(chunks[i])
                continue
            words = stack_rows(chunks, indices, length).view(
                np.dtype(f"<u{self.word_bits // 8}")
            )
            prev = np.empty_like(words)
            prev[:, 0] = 0
            prev[:, 1:] = words[:, :-1]
            coded = zigzag_encode(words - prev, self.word_bits)
            blob = coded.tobytes()
            for row, i in enumerate(indices):
                out[i] = blob[row * length : (row + 1) * length]
        return out

    def decode_batch(self, payloads: list) -> list[bytes]:
        out: list[bytes | None] = [None] * len(payloads)
        for length, indices in length_groups(payloads).items():
            if len(indices) < 2 or length == 0 or length % (self.word_bits // 8):
                for i in indices:
                    out[i] = self.decode(payloads[i])
                continue
            coded = stack_rows(payloads, indices, length).view(
                np.dtype(f"<u{self.word_bits // 8}")
            )
            diff = zigzag_decode(coded, self.word_bits)
            words = np.cumsum(diff, axis=1, dtype=diff.dtype)
            blob = words.tobytes()
            for row, i in enumerate(indices):
                out[i] = blob[row * length : (row + 1) * length]
        return out
