"""Enhanced MPLG: per-subchunk elimination of common leading zero bits.

The second (and final) stage of SPspeed and DPspeed (paper §3.1,
Figure 3).  Each 16 KiB chunk is divided into 32 subchunks of 512 bytes;
within a subchunk, the number of leading zero bits of the *maximum* value
is eliminated from every value, and the truncated values are concatenated
at a fixed width so that each value remains independently decodable.

Enhancement from the paper: if the subchunk maximum has no leading zeros
(MPLG would be ineffective), an extra two's-complement to magnitude-sign
conversion is applied first.  The conversion is meaningless semantically
but fast, reversible, and often produces a few leading zeros where there
were none.  One flag bit per subchunk records whether it was applied.

Subchunk payload layout: one header byte per subchunk — bit 7 is the
magnitude-sign flag, bits 0-6 hold the kept bit width (0..word_bits) —
followed by the packed values.
"""

from __future__ import annotations

import numpy as np

from repro.bitpack import (
    count_leading_zeros,
    pack_words,
    packed_size_bytes,
    unpack_words,
    words_from_bytes,
    words_to_bytes,
    zigzag_decode,
    zigzag_encode,
)
from repro.errors import CorruptDataError
from repro.stages import ByteLike, Stage
from repro.stages._frame import Reader, Writer

SUBCHUNK_BYTES = 512

_FLAG_MS = 0x80
_WIDTH_MASK = 0x7F


class MPLG(Stage):
    """Common-leading-zero-bit elimination with per-subchunk widths."""

    name = "mplg"

    def __init__(self, word_bits: int = 32, subchunk_bytes: int = SUBCHUNK_BYTES) -> None:
        if word_bits not in (32, 64):
            raise ValueError("MPLG operates at 32- or 64-bit granularity")
        if subchunk_bytes % (word_bits // 8) != 0:
            raise ValueError("subchunk size must be a whole number of words")
        self.word_bits = word_bits
        self.subchunk_bytes = subchunk_bytes
        self._words_per_subchunk = subchunk_bytes // (word_bits // 8)
        # Batching requires whole-byte subchunk payloads (step % 8 == 0 words
        # ⟹ no pad bits ⟹ same-width payloads concatenate seamlessly).
        # Tests flip _force_serial to pin batched/serial byte-identity.
        self._force_serial = self._words_per_subchunk % 8 != 0

    def encode(self, data: ByteLike) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        writer = Writer()
        writer.u32(len(words))
        writer.u8(len(tail))
        writer.raw(tail)
        step = self._words_per_subchunk
        n_full = len(words) // step
        if self._force_serial or n_full == 0:
            for start in range(0, len(words), step):
                self._encode_subchunk(words[start : start + step], writer)
            return writer.getvalue()
        self._encode_batched(words, n_full, writer)
        for start in range(n_full * step, len(words), step):
            self._encode_subchunk(words[start : start + step], writer)
        return writer.getvalue()

    def _encode_batched(self, words: np.ndarray, n_full: int, writer: Writer) -> None:
        """Encode all full subchunks with one width/flag/pack pass per group.

        Byte-identical to the per-subchunk loop: widths and magnitude-sign
        flags are computed for every subchunk at once, then subchunks are
        grouped by width and each group packed in a single kernel call
        (valid because full subchunk payloads are whole bytes).
        """
        step = self._words_per_subchunk
        body = words[: n_full * step].reshape(n_full, step)
        maxima = body.max(axis=1)
        clz = count_leading_zeros(maxima, self.word_bits)
        widths = (np.uint8(self.word_bits) - clz).astype(np.intp)
        flags = np.zeros(n_full, dtype=np.uint8)
        needs_ms = clz == 0
        if needs_ms.any():
            converted = zigzag_encode(body[needs_ms].reshape(-1), self.word_bits)
            converted = converted.reshape(-1, step)
            body = body.copy()
            body[needs_ms] = converted
            clz_ms = count_leading_zeros(converted.max(axis=1), self.word_bits)
            widths[needs_ms] = self.word_bits - clz_ms
            flags[needs_ms] = _FLAG_MS
        payload_size = widths * (step // 8)
        offsets = {}
        blobs = {}
        for w in np.unique(widths):
            members = np.flatnonzero(widths == w)
            blobs[int(w)] = pack_words(body[members].reshape(-1), int(w), self.word_bits)
            for rank, idx in enumerate(members):
                offsets[int(idx)] = rank * int(payload_size[idx])
        for i in range(n_full):
            w = int(widths[i])
            writer.u8(int(flags[i]) | w)
            off = offsets[i]
            writer.raw(blobs[w][off : off + int(payload_size[i])])

    def _encode_subchunk(self, sub: np.ndarray, writer: Writer) -> None:
        flag = 0
        leading = int(count_leading_zeros(sub.max(keepdims=True), self.word_bits)[0])
        if leading == 0:
            converted = zigzag_encode(sub, self.word_bits)
            leading = int(count_leading_zeros(converted.max(keepdims=True), self.word_bits)[0])
            sub = converted
            flag = _FLAG_MS
        width = self.word_bits - leading
        writer.u8(flag | width)
        writer.raw(pack_words(sub, width, self.word_bits))

    def decode(self, data: ByteLike) -> bytes:
        reader = Reader(data)
        n_words = reader.u32()
        tail = reader.raw(reader.u8())
        dtype = np.dtype(f"<u{self.word_bits // 8}")
        out = np.empty(n_words, dtype=dtype)
        step = self._words_per_subchunk
        n_full = 0 if self._force_serial else n_words // step
        if n_full:
            self._decode_batched(reader, out, n_full)
        for start in range(n_full * step, n_words, step):
            count = min(step, n_words - start)
            header = reader.u8()
            width = header & _WIDTH_MASK
            if width > self.word_bits:
                raise CorruptDataError(f"MPLG width {width} exceeds word size")
            payload = reader.raw(packed_size_bytes(count, width))
            sub = unpack_words(payload, count, width, self.word_bits)
            if header & _FLAG_MS:
                sub = zigzag_decode(sub, self.word_bits)
            out[start : start + count] = sub
        reader.expect_exhausted()
        return words_to_bytes(out, tail)

    def _decode_batched(self, reader: Reader, out: np.ndarray, n_full: int) -> None:
        """Decode all full subchunks with one unpack call per width group.

        Headers are still walked sequentially (each payload length depends
        on its width, and corrupt-width errors must surface in stream
        order), but the per-subchunk unpack/zigzag work is grouped by
        (width, flag) and done in one vector call per group.
        """
        step = self._words_per_subchunk
        groups: dict[tuple[int, int], tuple[list[int], list[ByteLike]]] = {}
        for i in range(n_full):
            header = reader.u8()
            width = header & _WIDTH_MASK
            if width > self.word_bits:
                raise CorruptDataError(f"MPLG width {width} exceeds word size")
            payload = reader.raw(step * width // 8)
            indices, payloads = groups.setdefault((width, header & _FLAG_MS), ([], []))
            indices.append(i)
            payloads.append(payload)
        body = out[: n_full * step].reshape(n_full, step)
        for (width, flag), (indices, payloads) in groups.items():
            joined = b"".join(bytes(p) for p in payloads)
            vals = unpack_words(joined, len(indices) * step, width, self.word_bits)
            if flag:
                vals = zigzag_decode(vals, self.word_bits)
            body[np.asarray(indices, dtype=np.intp)] = vals.reshape(len(indices), step)
