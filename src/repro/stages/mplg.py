"""Enhanced MPLG: per-subchunk elimination of common leading zero bits.

The second (and final) stage of SPspeed and DPspeed (paper §3.1,
Figure 3).  Each 16 KiB chunk is divided into 32 subchunks of 512 bytes;
within a subchunk, the number of leading zero bits of the *maximum* value
is eliminated from every value, and the truncated values are concatenated
at a fixed width so that each value remains independently decodable.

Enhancement from the paper: if the subchunk maximum has no leading zeros
(MPLG would be ineffective), an extra two's-complement to magnitude-sign
conversion is applied first.  The conversion is meaningless semantically
but fast, reversible, and often produces a few leading zeros where there
were none.  One flag bit per subchunk records whether it was applied.

Subchunk payload layout: one header byte per subchunk — bit 7 is the
magnitude-sign flag, bits 0-6 hold the kept bit width (0..word_bits) —
followed by the packed values.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.bitpack import (
    count_leading_zeros,
    pack_words,
    packed_size_bytes,
    unpack_words,
    words_from_bytes,
    words_to_bytes,
    zigzag_decode,
    zigzag_encode,
)
from repro.errors import CorruptDataError
from repro.stages import ByteLike, Stage
from repro.stages._batch import length_groups, stack_rows
from repro.stages._frame import Reader, Writer

SUBCHUNK_BYTES = 512

_FLAG_MS = 0x80
_WIDTH_MASK = 0x7F

#: Smallest same-geometry group worth routing through ``_decode_rows``.
#: Its header walk runs ``n_per`` numpy steps over *group-sized* arrays,
#: so tiny groups pay the vector overhead without the amortisation —
#: measured break-even on 16 KiB chunks is ~20 members (the encode side
#: has no such walk and wins from 4 members on, so it stays ungated).
_MIN_DECODE_GROUP = 24


class MPLG(Stage):
    """Common-leading-zero-bit elimination with per-subchunk widths."""

    name = "mplg"

    def __init__(self, word_bits: int = 32, subchunk_bytes: int = SUBCHUNK_BYTES) -> None:
        if word_bits not in (32, 64):
            raise ValueError("MPLG operates at 32- or 64-bit granularity")
        if subchunk_bytes % (word_bits // 8) != 0:
            raise ValueError("subchunk size must be a whole number of words")
        self.word_bits = word_bits
        self.subchunk_bytes = subchunk_bytes
        self._words_per_subchunk = subchunk_bytes // (word_bits // 8)
        # Batching requires whole-byte subchunk payloads (step % 8 == 0 words
        # ⟹ no pad bits ⟹ same-width payloads concatenate seamlessly).
        # Tests flip _force_serial to pin batched/serial byte-identity.
        self._force_serial = self._words_per_subchunk % 8 != 0

    def encode(self, data: ByteLike) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        writer = Writer()
        writer.u32(len(words))
        writer.u8(len(tail))
        writer.raw(tail)
        step = self._words_per_subchunk
        n_full = len(words) // step
        if self._force_serial or n_full == 0:
            for start in range(0, len(words), step):
                self._encode_subchunk(words[start : start + step], writer)
            return writer.getvalue()
        self._encode_batched(words, n_full, writer)
        for start in range(n_full * step, len(words), step):
            self._encode_subchunk(words[start : start + step], writer)
        return writer.getvalue()

    def _encode_batched(self, words: np.ndarray, n_full: int, writer: Writer) -> None:
        """Encode all full subchunks with one width/flag/pack pass per group.

        Byte-identical to the per-subchunk loop: widths and magnitude-sign
        flags are computed for every subchunk at once, then subchunks are
        grouped by width and each group packed in a single kernel call
        (valid because full subchunk payloads are whole bytes).
        """
        step = self._words_per_subchunk
        body = words[: n_full * step].reshape(n_full, step)
        maxima = body.max(axis=1)
        clz = count_leading_zeros(maxima, self.word_bits)
        widths = (np.uint8(self.word_bits) - clz).astype(np.intp)
        flags = np.zeros(n_full, dtype=np.uint8)
        needs_ms = clz == 0
        if needs_ms.any():
            converted = zigzag_encode(body[needs_ms].reshape(-1), self.word_bits)
            converted = converted.reshape(-1, step)
            body = body.copy()
            body[needs_ms] = converted
            clz_ms = count_leading_zeros(converted.max(axis=1), self.word_bits)
            widths[needs_ms] = self.word_bits - clz_ms
            flags[needs_ms] = _FLAG_MS
        payload_size = widths * (step // 8)
        offsets = {}
        blobs = {}
        for w in np.unique(widths):
            members = np.flatnonzero(widths == w)
            blobs[int(w)] = pack_words(body[members].reshape(-1), int(w), self.word_bits)
            for rank, idx in enumerate(members):
                offsets[int(idx)] = rank * int(payload_size[idx])
        for i in range(n_full):
            w = int(widths[i])
            writer.u8(int(flags[i]) | w)
            off = offsets[i]
            writer.raw(blobs[w][off : off + int(payload_size[i])])

    def _encode_subchunk(self, sub: np.ndarray, writer: Writer) -> None:
        flag = 0
        leading = int(count_leading_zeros(sub.max(keepdims=True), self.word_bits)[0])
        if leading == 0:
            converted = zigzag_encode(sub, self.word_bits)
            leading = int(count_leading_zeros(converted.max(keepdims=True), self.word_bits)[0])
            sub = converted
            flag = _FLAG_MS
        width = self.word_bits - leading
        writer.u8(flag | width)
        writer.raw(pack_words(sub, width, self.word_bits))

    def decode(self, data: ByteLike) -> bytes:
        reader = Reader(data)
        n_words = reader.u32()
        tail = reader.raw(reader.u8())
        dtype = np.dtype(f"<u{self.word_bits // 8}")
        out = np.empty(n_words, dtype=dtype)
        step = self._words_per_subchunk
        n_full = 0 if self._force_serial else n_words // step
        if n_full:
            self._decode_batched(reader, out, n_full)
        for start in range(n_full * step, n_words, step):
            count = min(step, n_words - start)
            header = reader.u8()
            width = header & _WIDTH_MASK
            if width > self.word_bits:
                raise CorruptDataError(f"MPLG width {width} exceeds word size")
            payload = reader.raw(packed_size_bytes(count, width))
            sub = unpack_words(payload, count, width, self.word_bits)
            if header & _FLAG_MS:
                sub = zigzag_decode(sub, self.word_bits)
            out[start : start + count] = sub
        reader.expect_exhausted()
        return words_to_bytes(out, tail)

    # -- batched (cross-chunk) execution ----------------------------------

    def encode_batch(self, chunks: list) -> list[bytes]:
        """Width-group the full subchunks of *all* equal-length chunks.

        The within-chunk batching of :meth:`_encode_batched` extends
        across the batch: one maxima/CLZ/width pass over every subchunk
        and one ``pack_words`` call per *global* width group.  Byte
        identity holds for the same reason as within a chunk — full
        subchunk payloads are whole bytes, so same-width payloads
        concatenate seamlessly regardless of which chunk they came from.
        """
        out: list[bytes | None] = [None] * len(chunks)
        word_bytes = self.word_bits // 8
        step = self._words_per_subchunk
        for length, indices in length_groups(chunks).items():
            n_words = length // word_bytes
            if (
                len(indices) < 2
                or self._force_serial
                or length == 0
                or length % word_bytes
                or n_words % step
            ):
                for i in indices:
                    out[i] = self.encode(chunks[i])
                continue
            rows = stack_rows(chunks, indices, length).view(
                np.dtype(f"<u{word_bytes}")
            )
            for row, payload in enumerate(self._encode_rows(rows, n_words)):
                out[indices[row]] = payload
        return out

    def _encode_rows(self, rows: np.ndarray, n_words: int) -> list[bytes]:
        wb = self.word_bits
        step = self._words_per_subchunk
        n_per = n_words // step
        n_chunks = len(rows)
        subs = rows.reshape(n_chunks * n_per, step)
        maxima = subs.max(axis=1)
        clz = count_leading_zeros(maxima, wb)
        widths = (np.uint8(wb) - clz).astype(np.intp)
        flags = np.zeros(len(subs), dtype=np.uint8)
        needs_ms = clz == 0
        if needs_ms.any():
            converted = zigzag_encode(subs[needs_ms].reshape(-1), wb)
            converted = converted.reshape(-1, step)
            # ``rows`` is the fresh buffer stack_rows built for this call,
            # so the magnitude-sign rows can be patched in place.
            subs[needs_ms] = converted
            clz_ms = count_leading_zeros(converted.max(axis=1), wb)
            widths[needs_ms] = wb - clz_ms
            flags[needs_ms] = _FLAG_MS
        sub_bytes = step // 8
        blobs: dict[int, tuple[np.ndarray, bytes]] = {}
        for w in np.unique(widths):
            members = np.flatnonzero(widths == w)
            blobs[int(w)] = (
                members,
                pack_words(subs[members].reshape(-1), int(w), wb),
            )
        # Assemble every chunk payload with one scatter pass per width
        # group: compute the wire position of each subchunk, write the
        # shared prefix and all header bytes at once, then fancy-index
        # each group's packed bytes to their interleaved destinations
        # (a group blob holds its members in subchunk-index order, the
        # same order ``flatnonzero`` yields).
        sizes = 1 + widths * sub_bytes
        per_chunk = sizes.reshape(n_chunks, n_per)
        chunk_sizes = 5 + per_chunk.sum(axis=1)
        chunk_ends = np.cumsum(chunk_sizes)
        chunk_starts = chunk_ends - chunk_sizes
        within = np.cumsum(per_chunk, axis=1) - per_chunk
        header_pos = (chunk_starts[:, None] + 5 + within).reshape(-1)
        out = np.empty(int(chunk_ends[-1]), dtype=np.uint8)
        prefix = np.frombuffer(struct.pack("<IB", n_words, 0), dtype=np.uint8)
        out[chunk_starts[:, None] + np.arange(5)] = prefix
        out[header_pos] = flags | widths.astype(np.uint8)
        for w, (members, blob) in blobs.items():
            size = w * sub_bytes
            if not size:
                continue
            dest = (header_pos[members] + 1)[:, None] + np.arange(size)
            out[dest.reshape(-1)] = np.frombuffer(blob, dtype=np.uint8)
        wire = out.tobytes()
        return [
            wire[chunk_starts[c] : chunk_ends[c]] for c in range(n_chunks)
        ]

    def decode_batch(self, payloads: list) -> list[bytes]:
        out: list[bytes | None] = [None] * len(payloads)
        step = self._words_per_subchunk
        # MPLG payload lengths vary with the data (per-subchunk widths),
        # so group on the *decoded* geometry — every whole-subchunk
        # payload with the same word count batches together, whatever
        # its byte length.  The flat-buffer walk in ``_decode_rows``
        # handles ragged member lengths natively.
        eligible: dict[int, list[int]] = {}
        if not self._force_serial:
            for i, payload in enumerate(payloads):
                if len(payload) < 5:
                    continue
                n_words, tail_len = struct.unpack_from("<IB", payload, 0)
                if tail_len == 0 and n_words and n_words % step == 0:
                    eligible.setdefault(n_words, []).append(i)
        for n_words, members in list(eligible.items()):
            if len(members) < _MIN_DECODE_GROUP:
                del eligible[n_words]
        batched = {i for members in eligible.values() for i in members}
        for i in range(len(payloads)):
            if i not in batched:
                out[i] = self.decode(payloads[i])
        for n_words, members in eligible.items():
            bufs = [payloads[i] for i in members]
            for row, chunk in enumerate(self._decode_rows(bufs, n_words)):
                out[members[row]] = chunk
        return out

    def _decode_rows(self, bufs: list, n_words: int) -> list[bytes]:
        wb = self.word_bits
        step = self._words_per_subchunk
        sub_bytes = step // 8
        n_chunks = len(bufs)
        n_per = n_words // step
        lengths = np.array([len(b) for b in bufs], dtype=np.int64)
        flat = np.frombuffer(b"".join(bytes(b) for b in bufs), dtype=np.uint8)
        ends = np.cumsum(lengths)
        base = ends - lengths
        pos = base + 5
        sub_width = np.empty((n_chunks, n_per), dtype=np.int64)
        sub_flag = np.empty((n_chunks, n_per), dtype=bool)
        sub_off = np.empty((n_chunks, n_per), dtype=np.int64)
        for j in range(n_per):
            if np.any(pos >= ends):
                # A read past a member's end would bleed into the next
                # member's bytes without this guard (the serial Reader
                # raises here too; the engine re-runs the block serially
                # for exact attribution).
                raise CorruptDataError("truncated MPLG subchunk payload")
            header = flat[pos]
            widths_j = (header & _WIDTH_MASK).astype(np.int64)
            if np.any(widths_j > wb):
                raise CorruptDataError(f"MPLG width exceeds word size {wb}")
            sizes_j = widths_j * sub_bytes
            if np.any(pos + 1 + sizes_j > ends):
                raise CorruptDataError("truncated MPLG subchunk payload")
            sub_width[:, j] = widths_j
            sub_flag[:, j] = (header & _FLAG_MS) != 0
            sub_off[:, j] = pos + 1
            pos += 1 + sizes_j
        if np.any(pos != ends):
            raise CorruptDataError("unexpected trailing bytes in MPLG payload")
        dtype = np.dtype(f"<u{wb // 8}")
        words = np.empty((n_chunks, n_per, step), dtype=dtype)
        key = (sub_width << 1) | sub_flag
        for packed_key in np.unique(key):
            width = int(packed_key) >> 1
            flagged = bool(int(packed_key) & 1)
            rows_idx, cols_idx = np.nonzero(key == packed_key)
            size = width * sub_bytes
            if size:
                starts = sub_off[rows_idx, cols_idx]
                gathered = flat[(starts[:, None] + np.arange(size)).reshape(-1)]
                vals = unpack_words(gathered, len(rows_idx) * step, width, wb)
            else:
                vals = np.zeros(len(rows_idx) * step, dtype=dtype)
            if flagged:
                vals = zigzag_decode(vals, wb)
            words[rows_idx, cols_idx] = vals.reshape(len(rows_idx), step)
        blob = words.reshape(n_chunks, -1).tobytes()
        out_len = n_words * (wb // 8)
        return [blob[c * out_len : (c + 1) * out_len] for c in range(n_chunks)]

    def _decode_batched(self, reader: Reader, out: np.ndarray, n_full: int) -> None:
        """Decode all full subchunks with one unpack call per width group.

        Headers are still walked sequentially (each payload length depends
        on its width, and corrupt-width errors must surface in stream
        order), but the per-subchunk unpack/zigzag work is grouped by
        (width, flag) and done in one vector call per group.
        """
        step = self._words_per_subchunk
        groups: dict[tuple[int, int], tuple[list[int], list[ByteLike]]] = {}
        for i in range(n_full):
            header = reader.u8()
            width = header & _WIDTH_MASK
            if width > self.word_bits:
                raise CorruptDataError(f"MPLG width {width} exceeds word size")
            payload = reader.raw(step * width // 8)
            indices, payloads = groups.setdefault((width, header & _FLAG_MS), ([], []))
            indices.append(i)
            payloads.append(payload)
        body = out[: n_full * step].reshape(n_full, step)
        for (width, flag), (indices, payloads) in groups.items():
            joined = b"".join(bytes(p) for p in payloads)
            vals = unpack_words(joined, len(indices) * step, width, self.word_bits)
            if flag:
                vals = zigzag_decode(vals, self.word_bits)
            body[np.asarray(indices, dtype=np.intp)] = vals.reshape(len(indices), step)
