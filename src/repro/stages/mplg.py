"""Enhanced MPLG: per-subchunk elimination of common leading zero bits.

The second (and final) stage of SPspeed and DPspeed (paper §3.1,
Figure 3).  Each 16 KiB chunk is divided into 32 subchunks of 512 bytes;
within a subchunk, the number of leading zero bits of the *maximum* value
is eliminated from every value, and the truncated values are concatenated
at a fixed width so that each value remains independently decodable.

Enhancement from the paper: if the subchunk maximum has no leading zeros
(MPLG would be ineffective), an extra two's-complement to magnitude-sign
conversion is applied first.  The conversion is meaningless semantically
but fast, reversible, and often produces a few leading zeros where there
were none.  One flag bit per subchunk records whether it was applied.

Subchunk payload layout: one header byte per subchunk — bit 7 is the
magnitude-sign flag, bits 0-6 hold the kept bit width (0..word_bits) —
followed by the packed values.
"""

from __future__ import annotations

import numpy as np

from repro.bitpack import (
    count_leading_zeros,
    pack_words,
    packed_size_bytes,
    unpack_words,
    words_from_bytes,
    words_to_bytes,
    zigzag_decode,
    zigzag_encode,
)
from repro.errors import CorruptDataError
from repro.stages import ByteLike, Stage
from repro.stages._frame import Reader, Writer

SUBCHUNK_BYTES = 512

_FLAG_MS = 0x80
_WIDTH_MASK = 0x7F


class MPLG(Stage):
    """Common-leading-zero-bit elimination with per-subchunk widths."""

    name = "mplg"

    def __init__(self, word_bits: int = 32, subchunk_bytes: int = SUBCHUNK_BYTES) -> None:
        if word_bits not in (32, 64):
            raise ValueError("MPLG operates at 32- or 64-bit granularity")
        if subchunk_bytes % (word_bits // 8) != 0:
            raise ValueError("subchunk size must be a whole number of words")
        self.word_bits = word_bits
        self.subchunk_bytes = subchunk_bytes
        self._words_per_subchunk = subchunk_bytes // (word_bits // 8)

    def encode(self, data: ByteLike) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        writer = Writer()
        writer.u32(len(words))
        writer.u8(len(tail))
        writer.raw(tail)
        step = self._words_per_subchunk
        for start in range(0, len(words), step):
            self._encode_subchunk(words[start : start + step], writer)
        return writer.getvalue()

    def _encode_subchunk(self, sub: np.ndarray, writer: Writer) -> None:
        flag = 0
        leading = int(count_leading_zeros(sub.max(keepdims=True), self.word_bits)[0])
        if leading == 0:
            converted = zigzag_encode(sub, self.word_bits)
            leading = int(count_leading_zeros(converted.max(keepdims=True), self.word_bits)[0])
            sub = converted
            flag = _FLAG_MS
        width = self.word_bits - leading
        writer.u8(flag | width)
        writer.raw(pack_words(sub, width, self.word_bits))

    def decode(self, data: ByteLike) -> bytes:
        reader = Reader(data)
        n_words = reader.u32()
        tail = reader.raw(reader.u8())
        dtype = np.dtype(f"<u{self.word_bits // 8}")
        out = np.empty(n_words, dtype=dtype)
        step = self._words_per_subchunk
        for start in range(0, n_words, step):
            count = min(step, n_words - start)
            header = reader.u8()
            width = header & _WIDTH_MASK
            if width > self.word_bits:
                raise CorruptDataError(f"MPLG width {width} exceeds word size")
            payload = reader.raw(packed_size_bytes(count, width))
            sub = unpack_words(payload, count, width, self.word_bits)
            if header & _FLAG_MS:
                sub = zigzag_decode(sub, self.word_bits)
            out[start : start + count] = sub
        reader.expect_exhausted()
        return words_to_bytes(out, tail)
