"""RAZE: Repeated Adaptive Zero Elimination (third stage of DPratio).

Paper §3.2, Figure 7.  Double-precision values tend to carry random bits
in their least-significant positions, which plain RZE cannot compress.
RAZE therefore splits each word into a top-``k`` piece and a bottom
``w-k`` piece, applies zero elimination only to the top pieces, and
stores the bottoms verbatim.  The *adaptive* part — the key innovation —
picks the optimal split per chunk from a leading-zero histogram (see
:mod:`repro.stages._adaptive`); the chosen split is recorded in the
output so the decompressor needs no histogram.

The paper's prose leaves one detail open: whether the "RZE applied to
the top ``k`` bits" eliminates whole all-zero top *pieces* (one bitmap
bit per value) or zero *bytes* within the top pieces (one bitmap bit per
byte, like SPratio's RZE).  The two behave differently — per-value wins
on smooth data (cheaper bitmap), per-byte wins when zeros hide inside
pieces (e.g. quantised instrument data).  We implement both and let the
encoder pick the smaller per chunk, recording the mode in one byte:

* mode 0 — bit-granular ``k`` (0..w), per-value bitmap, tops packed at
  ``k`` bits;
* mode 1 — byte-granular split (``kb`` top bytes), per-byte bitmap over
  the top-byte stream, bottom bytes stored verbatim.

Both bitmaps are compressed with the repeated repeating-byte elimination
of :mod:`repro.stages._bitmap`.
"""

from __future__ import annotations

import numpy as np

from repro.bitpack import (
    count_leading_zeros,
    pack_words,
    packed_size_bytes,
    unpack_words,
    words_from_bytes,
    words_to_bytes,
)
from repro.errors import CorruptDataError
from repro.stages import ByteLike, Stage
from repro.stages._adaptive import choose_k, eliminated_counts
from repro.stages._bitmap import compress_bitmap, decompress_bitmap
from repro.stages._frame import Reader, Writer

MODE_BIT_K = 0
MODE_BYTE_K = 1


class RAZE(Stage):
    """Adaptive top-``k`` zero elimination at 32- or 64-bit granularity."""

    name = "raze"

    def __init__(self, word_bits: int = 64) -> None:
        if word_bits not in (32, 64):
            raise ValueError("RAZE operates at 32- or 64-bit granularity")
        self.word_bits = word_bits

    # -- encoding ---------------------------------------------------------

    def encode(self, data: ByteLike) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        writer = Writer()
        writer.u32(len(words))
        writer.u8(len(tail))
        writer.raw(tail)
        if len(words) == 0:
            writer.u8(MODE_BIT_K)
            writer.u8(0)
            return writer.getvalue()
        bit_k, bit_cost = self._plan_bit_mode(words)
        byte_k, byte_cost = self._plan_byte_mode(words)
        if byte_cost < bit_cost:
            self._encode_byte_mode(words, byte_k, writer)
        else:
            self._encode_bit_mode(words, bit_k, writer)
        return writer.getvalue()

    def _plan_bit_mode(self, words: np.ndarray) -> tuple[int, float]:
        wb = self.word_bits
        n = len(words)
        leading = count_leading_zeros(words, wb)
        k = choose_k(leading, n, wb)
        if k == 0:
            return 0, float(n * wb)
        counts = eliminated_counts(leading, wb)
        cost_bits = n + (n - int(counts[k])) * k + n * (wb - k)
        return k, float(cost_bits)

    def _plan_byte_mode(self, words: np.ndarray) -> tuple[int, float]:
        word_bytes = self.word_bits // 8
        n = len(words)
        rows = self._byte_rows(words)
        zero_per_plane = (rows == 0).sum(axis=0)  # zeros at each byte position
        best_kb, best_cost = 0, float(n * self.word_bits)
        zeros = 0
        for kb in range(1, word_bytes + 1):
            zeros += int(zero_per_plane[kb - 1])
            top_bytes = n * kb
            # bitmap (1 bit/byte) + surviving top bytes + raw bottom bytes
            cost_bits = top_bytes + (top_bytes - zeros) * 8 + n * (self.word_bits - kb * 8)
            if cost_bits < best_cost:
                best_kb, best_cost = kb, float(cost_bits)
        return best_kb, best_cost

    def _byte_rows(self, words: np.ndarray) -> np.ndarray:
        """Big-endian (n, word_bytes) byte matrix: column 0 = most significant."""
        be = words.astype(words.dtype.newbyteorder(">"), copy=False)
        return be.view(np.uint8).reshape(len(words), self.word_bits // 8)

    def _encode_bit_mode(self, words: np.ndarray, k: int, writer: Writer) -> None:
        wb = self.word_bits
        writer.u8(MODE_BIT_K)
        writer.u8(k)
        if k == 0:
            writer.raw(words_to_bytes(words))
            return
        leading = count_leading_zeros(words, wb)
        kept_mask = leading < k
        tops = (words >> (wb - k))[kept_mask]
        if k == wb:
            bottoms = np.zeros_like(words)
        else:
            bottoms = words & words.dtype.type((1 << (wb - k)) - 1)
        writer.u32(int(kept_mask.sum()))
        writer.raw(compress_bitmap(kept_mask))
        writer.raw(pack_words(tops, k, wb))
        writer.raw(pack_words(bottoms, wb - k, wb))

    def _encode_byte_mode(self, words: np.ndarray, kb: int, writer: Writer) -> None:
        writer.u8(MODE_BYTE_K)
        writer.u8(kb)
        rows = self._byte_rows(words)
        top = rows[:, :kb].reshape(-1)
        bottom = rows[:, kb:].reshape(-1)
        mask = top != 0
        writer.u32(int(mask.sum()))
        writer.raw(compress_bitmap(mask))
        writer.raw(top[mask].tobytes())
        writer.raw(bottom.tobytes())

    # -- decoding ---------------------------------------------------------

    def decode(self, data: ByteLike) -> bytes:
        reader = Reader(data)
        n = reader.u32()
        tail = reader.raw(reader.u8())
        mode = reader.u8()
        if n == 0:
            if mode == MODE_BIT_K:
                reader.u8()
            reader.expect_exhausted()
            return bytes(tail)
        if mode == MODE_BIT_K:
            words = self._decode_bit_mode(reader, n)
        elif mode == MODE_BYTE_K:
            words = self._decode_byte_mode(reader, n)
        else:
            raise CorruptDataError(f"unknown RAZE mode {mode}")
        reader.expect_exhausted()
        return words_to_bytes(words, tail)

    def _decode_bit_mode(self, reader: Reader, n: int) -> np.ndarray:
        wb = self.word_bits
        k = reader.u8()
        if k > wb:
            raise CorruptDataError(f"RAZE split {k} exceeds word size")
        dtype = np.dtype(f"<u{wb // 8}")
        if k == 0:
            return np.frombuffer(reader.raw(n * dtype.itemsize), dtype=dtype)
        n_kept = reader.u32()
        kept_mask = decompress_bitmap(reader, n)
        if int(kept_mask.sum()) != n_kept:
            raise CorruptDataError("RAZE bitmap population mismatch")
        tops = unpack_words(reader.raw(packed_size_bytes(n_kept, k)), n_kept, k, wb)
        bottoms = unpack_words(reader.raw(packed_size_bytes(n, wb - k)), n, wb - k, wb)
        tops_full = np.zeros(n, dtype=dtype)
        tops_full[kept_mask] = tops
        return (tops_full << (wb - k)) | bottoms

    def _decode_byte_mode(self, reader: Reader, n: int) -> np.ndarray:
        word_bytes = self.word_bits // 8
        kb = reader.u8()
        if not 1 <= kb <= word_bytes:
            raise CorruptDataError(f"RAZE byte split {kb} out of range")
        n_kept = reader.u32()
        mask = decompress_bitmap(reader, n * kb)
        if int(mask.sum()) != n_kept:
            raise CorruptDataError("RAZE bitmap population mismatch")
        nonzero = np.frombuffer(reader.raw(n_kept), dtype=np.uint8)
        bottom = np.frombuffer(reader.raw(n * (word_bytes - kb)), dtype=np.uint8)
        top = np.zeros(n * kb, dtype=np.uint8)
        top[mask] = nonzero
        rows = np.empty((n, word_bytes), dtype=np.uint8)
        rows[:, :kb] = top.reshape(n, kb)
        rows[:, kb:] = bottom.reshape(n, word_bytes - kb)
        be = rows.reshape(-1).view(np.dtype(f">u{word_bytes}"))
        return be.astype(np.dtype(f"<u{word_bytes}"))
