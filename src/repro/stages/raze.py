"""RAZE: Repeated Adaptive Zero Elimination (third stage of DPratio).

Paper §3.2, Figure 7.  Double-precision values tend to carry random bits
in their least-significant positions, which plain RZE cannot compress.
RAZE therefore splits each word into a top-``k`` piece and a bottom
``w-k`` piece, applies zero elimination only to the top pieces, and
stores the bottoms verbatim.  The *adaptive* part — the key innovation —
picks the optimal split per chunk from a leading-zero histogram (see
:mod:`repro.stages._adaptive`); the chosen split is recorded in the
output so the decompressor needs no histogram.

The paper's prose leaves one detail open: whether the "RZE applied to
the top ``k`` bits" eliminates whole all-zero top *pieces* (one bitmap
bit per value) or zero *bytes* within the top pieces (one bitmap bit per
byte, like SPratio's RZE).  The two behave differently — per-value wins
on smooth data (cheaper bitmap), per-byte wins when zeros hide inside
pieces (e.g. quantised instrument data).  We implement both and let the
encoder pick the smaller per chunk, recording the mode in one byte:

* mode 0 — bit-granular ``k`` (0..w), per-value bitmap, tops packed at
  ``k`` bits;
* mode 1 — byte-granular split (``kb`` top bytes), per-byte bitmap over
  the top-byte stream, bottom bytes stored verbatim.

Both bitmaps are compressed with the repeated repeating-byte elimination
of :mod:`repro.stages._bitmap`.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.bitpack import (
    count_leading_zeros,
    pack_words,
    packed_size_bytes,
    unpack_words,
    words_from_bytes,
    words_to_bytes,
)
from repro.errors import CorruptDataError
from repro.stages import ByteLike, Stage
from repro.stages._adaptive import choose_k, choose_k_rows, eliminated_counts
from repro.stages._batch import length_groups, split_rows, stack_rows
from repro.stages._bitmap import (
    compress_bitmap,
    compress_bitmap_batch,
    decompress_bitmap,
    decompress_bitmap_batch,
)
from repro.stages._frame import Reader, Writer

MODE_BIT_K = 0
MODE_BYTE_K = 1


class RAZE(Stage):
    """Adaptive top-``k`` zero elimination at 32- or 64-bit granularity."""

    name = "raze"

    def __init__(self, word_bits: int = 64) -> None:
        if word_bits not in (32, 64):
            raise ValueError("RAZE operates at 32- or 64-bit granularity")
        self.word_bits = word_bits

    # -- encoding ---------------------------------------------------------

    def encode(self, data: ByteLike) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        writer = Writer()
        writer.u32(len(words))
        writer.u8(len(tail))
        writer.raw(tail)
        if len(words) == 0:
            writer.u8(MODE_BIT_K)
            writer.u8(0)
            return writer.getvalue()
        bit_k, bit_cost = self._plan_bit_mode(words)
        byte_k, byte_cost = self._plan_byte_mode(words)
        if byte_cost < bit_cost:
            self._encode_byte_mode(words, byte_k, writer)
        else:
            self._encode_bit_mode(words, bit_k, writer)
        return writer.getvalue()

    def _plan_bit_mode(self, words: np.ndarray) -> tuple[int, float]:
        wb = self.word_bits
        n = len(words)
        leading = count_leading_zeros(words, wb)
        k = choose_k(leading, n, wb)
        if k == 0:
            return 0, float(n * wb)
        counts = eliminated_counts(leading, wb)
        cost_bits = n + (n - int(counts[k])) * k + n * (wb - k)
        return k, float(cost_bits)

    def _plan_byte_mode(self, words: np.ndarray) -> tuple[int, float]:
        word_bytes = self.word_bits // 8
        n = len(words)
        rows = self._byte_rows(words)
        zero_per_plane = (rows == 0).sum(axis=0)  # zeros at each byte position
        best_kb, best_cost = 0, float(n * self.word_bits)
        zeros = 0
        for kb in range(1, word_bytes + 1):
            zeros += int(zero_per_plane[kb - 1])
            top_bytes = n * kb
            # bitmap (1 bit/byte) + surviving top bytes + raw bottom bytes
            cost_bits = top_bytes + (top_bytes - zeros) * 8 + n * (self.word_bits - kb * 8)
            if cost_bits < best_cost:
                best_kb, best_cost = kb, float(cost_bits)
        return best_kb, best_cost

    def _byte_rows(self, words: np.ndarray) -> np.ndarray:
        """Big-endian (n, word_bytes) byte matrix: column 0 = most significant."""
        be = words.astype(words.dtype.newbyteorder(">"), copy=False)
        return be.view(np.uint8).reshape(len(words), self.word_bits // 8)

    def _encode_bit_mode(self, words: np.ndarray, k: int, writer: Writer) -> None:
        wb = self.word_bits
        writer.u8(MODE_BIT_K)
        writer.u8(k)
        if k == 0:
            writer.raw(words_to_bytes(words))
            return
        leading = count_leading_zeros(words, wb)
        kept_mask = leading < k
        tops = (words >> (wb - k))[kept_mask]
        if k == wb:
            bottoms = np.zeros_like(words)
        else:
            bottoms = words & words.dtype.type((1 << (wb - k)) - 1)
        writer.u32(int(kept_mask.sum()))
        writer.raw(compress_bitmap(kept_mask))
        writer.raw(pack_words(tops, k, wb))
        writer.raw(pack_words(bottoms, wb - k, wb))

    def _encode_byte_mode(self, words: np.ndarray, kb: int, writer: Writer) -> None:
        writer.u8(MODE_BYTE_K)
        writer.u8(kb)
        rows = self._byte_rows(words)
        top = rows[:, :kb].reshape(-1)
        bottom = rows[:, kb:].reshape(-1)
        mask = top != 0
        writer.u32(int(mask.sum()))
        writer.raw(compress_bitmap(mask))
        writer.raw(top[mask].tobytes())
        writer.raw(bottom.tobytes())

    # -- decoding ---------------------------------------------------------

    def decode(self, data: ByteLike) -> bytes:
        reader = Reader(data)
        n = reader.u32()
        tail = reader.raw(reader.u8())
        mode = reader.u8()
        if n == 0:
            if mode == MODE_BIT_K:
                reader.u8()
            reader.expect_exhausted()
            return bytes(tail)
        if mode == MODE_BIT_K:
            words = self._decode_bit_mode(reader, n)
        elif mode == MODE_BYTE_K:
            words = self._decode_byte_mode(reader, n)
        else:
            raise CorruptDataError(f"unknown RAZE mode {mode}")
        reader.expect_exhausted()
        return words_to_bytes(words, tail)

    def _decode_bit_mode(self, reader: Reader, n: int) -> np.ndarray:
        wb = self.word_bits
        k = reader.u8()
        if k > wb:
            raise CorruptDataError(f"RAZE split {k} exceeds word size")
        dtype = np.dtype(f"<u{wb // 8}")
        if k == 0:
            return np.frombuffer(reader.raw(n * dtype.itemsize), dtype=dtype)
        n_kept = reader.u32()
        kept_mask = decompress_bitmap(reader, n)
        if int(kept_mask.sum()) != n_kept:
            raise CorruptDataError("RAZE bitmap population mismatch")
        tops = unpack_words(reader.raw(packed_size_bytes(n_kept, k)), n_kept, k, wb)
        bottoms = unpack_words(reader.raw(packed_size_bytes(n, wb - k)), n, wb - k, wb)
        tops_full = np.zeros(n, dtype=dtype)
        tops_full[kept_mask] = tops
        return (tops_full << (wb - k)) | bottoms

    def _decode_byte_mode(self, reader: Reader, n: int) -> np.ndarray:
        word_bytes = self.word_bits // 8
        kb = reader.u8()
        if not 1 <= kb <= word_bytes:
            raise CorruptDataError(f"RAZE byte split {kb} out of range")
        n_kept = reader.u32()
        mask = decompress_bitmap(reader, n * kb)
        if int(mask.sum()) != n_kept:
            raise CorruptDataError("RAZE bitmap population mismatch")
        nonzero = np.frombuffer(reader.raw(n_kept), dtype=np.uint8)
        bottom = np.frombuffer(reader.raw(n * (word_bytes - kb)), dtype=np.uint8)
        top = np.zeros(n * kb, dtype=np.uint8)
        top[mask] = nonzero
        rows = np.empty((n, word_bytes), dtype=np.uint8)
        rows[:, :kb] = top.reshape(n, kb)
        rows[:, kb:] = bottom.reshape(n, word_bytes - kb)
        be = rows.reshape(-1).view(np.dtype(f">u{word_bytes}"))
        return be.astype(np.dtype(f"<u{word_bytes}"))

    # -- batched execution ------------------------------------------------

    def encode_batch(self, chunks: list) -> list[bytes]:
        out: list[bytes | None] = [None] * len(chunks)
        word_bytes = self.word_bits // 8
        for length, indices in length_groups(chunks).items():
            if len(indices) < 2 or length == 0 or length % word_bytes:
                for i in indices:
                    out[i] = self.encode(chunks[i])
                continue
            words2d = stack_rows(chunks, indices, length).view(
                np.dtype(f"<u{word_bytes}")
            )
            for row, payload in enumerate(
                self._encode_rows(words2d, length // word_bytes)
            ):
                out[indices[row]] = payload
        return out

    def _encode_rows(self, words2d: np.ndarray, n: int) -> list[bytes]:
        """Plan every row with the 2D histogram kernels, then emit rows
        grouped by their chosen ``(mode, k)`` so the pack/bitmap kernels
        run once per distinct plan instead of once per chunk."""
        wb = self.word_bits
        word_bytes = wb // 8
        n_chunks = len(words2d)
        leading2d = count_leading_zeros(words2d, wb)
        bit_k, bit_cost = choose_k_rows(leading2d, n, wb)
        be = words2d.astype(words2d.dtype.newbyteorder(">"), copy=False)
        rows3d = be.view(np.uint8).reshape(n_chunks, n, word_bytes)
        zeros_cum = np.cumsum((rows3d == 0).sum(axis=1, dtype=np.int64), axis=1)
        kbs = np.arange(1, word_bytes + 1, dtype=np.int64)
        top_bytes = n * kbs
        byte_costs = top_bytes + (top_bytes - zeros_cum) * 8 + n * (wb - kbs * 8)
        cost_disabled = np.int64(n) * wb
        mins = byte_costs.min(axis=1)
        enabled = mins < cost_disabled
        byte_k = np.where(enabled, np.argmin(byte_costs, axis=1) + 1, 0)
        byte_cost = np.where(enabled, mins, cost_disabled)
        use_byte = byte_cost < bit_cost
        prefix = struct.pack("<IB", n, 0)
        payloads: list[bytes | None] = [None] * n_chunks
        for k in np.unique(bit_k[~use_byte]):
            members = np.flatnonzero(~use_byte & (bit_k == k))
            self._encode_bit_rows(
                words2d, leading2d, members, n, int(k), prefix, payloads
            )
        for kb in np.unique(byte_k[use_byte]):
            members = np.flatnonzero(use_byte & (byte_k == kb))
            self._encode_byte_rows(rows3d, members, n, int(kb), prefix, payloads)
        return payloads

    def _encode_bit_rows(
        self,
        words2d: np.ndarray,
        leading2d: np.ndarray,
        members: np.ndarray,
        n: int,
        k: int,
        prefix: bytes,
        payloads: list,
    ) -> None:
        wb = self.word_bits
        mode = struct.pack("<BB", MODE_BIT_K, k)
        if k == 0:
            for r in members:
                payloads[r] = prefix + mode + words2d[r].tobytes()
            return
        sub = words2d[members]
        kept2d = np.asarray(leading2d[members]) < k
        counts = kept2d.sum(axis=1)
        tops = split_rows((sub >> (wb - k))[kept2d], counts)
        if k == wb:
            bottoms = [b""] * len(members)
        else:
            bottoms2d = sub & sub.dtype.type((1 << (wb - k)) - 1)
            row_bits = n * (wb - k)
            if row_bits % 8 == 0:
                blob = pack_words(bottoms2d.reshape(-1), wb - k, wb)
                size = row_bits // 8
                bottoms = [blob[r * size : (r + 1) * size] for r in range(len(members))]
            else:
                bottoms = [pack_words(row, wb - k, wb) for row in bottoms2d]
        bitmaps = compress_bitmap_batch(kept2d)
        for row, r in enumerate(members):
            payloads[r] = b"".join(
                (
                    prefix,
                    mode,
                    struct.pack("<I", int(counts[row])),
                    bitmaps[row],
                    pack_words(tops[row], k, wb),
                    bottoms[row],
                )
            )

    def _encode_byte_rows(
        self,
        rows3d: np.ndarray,
        members: np.ndarray,
        n: int,
        kb: int,
        prefix: bytes,
        payloads: list,
    ) -> None:
        word_bytes = self.word_bits // 8
        mode = struct.pack("<BB", MODE_BYTE_K, kb)
        sub = rows3d[members]
        top2d = sub[:, :, :kb].reshape(len(members), n * kb)
        bottom2d = sub[:, :, kb:].reshape(len(members), n * (word_bytes - kb))
        mask2d = top2d != 0
        counts = mask2d.sum(axis=1)
        nonzero = split_rows(top2d[mask2d], counts)
        bitmaps = compress_bitmap_batch(mask2d)
        for row, r in enumerate(members):
            payloads[r] = b"".join(
                (
                    prefix,
                    mode,
                    struct.pack("<I", int(counts[row])),
                    bitmaps[row],
                    nonzero[row].tobytes(),
                    bottom2d[row].tobytes(),
                )
            )

    def decode_batch(self, payloads: list) -> list[bytes]:
        out: list[bytes | None] = [None] * len(payloads)
        wb = self.word_bits
        word_bytes = wb // 8
        groups: dict[tuple[int, int, int], list[tuple[int, Reader]]] = {}
        serial: list[int] = []
        for i, payload in enumerate(payloads):
            reader = Reader(payload)
            n = reader.u32()
            tail_len = reader.u8()
            if tail_len or n == 0 or reader.remaining < 2:
                serial.append(i)
                continue
            mode = reader.u8()
            k = reader.u8()
            if mode == MODE_BIT_K and 1 <= k <= wb:
                groups.setdefault((n, mode, k), []).append((i, reader))
            elif mode == MODE_BYTE_K and 1 <= k <= word_bytes:
                groups.setdefault((n, mode, k), []).append((i, reader))
            else:
                serial.append(i)
        for (n, mode, k), members in groups.items():
            if len(members) < 2:
                serial.extend(i for i, _ in members)
                continue
            readers = [reader for _, reader in members]
            if mode == MODE_BIT_K:
                words2d = self._decode_bit_rows(readers, n, k)
            else:
                words2d = self._decode_byte_rows(readers, n, k)
            blob = words2d.tobytes()
            size = n * word_bytes
            for row, (i, _) in enumerate(members):
                out[i] = blob[row * size : (row + 1) * size]
        for i in serial:
            out[i] = self.decode(payloads[i])
        return out

    def _decode_bit_rows(self, readers: list[Reader], n: int, k: int) -> np.ndarray:
        wb = self.word_bits
        dtype = np.dtype(f"<u{wb // 8}")
        n_kept = np.array([reader.u32() for reader in readers], dtype=np.int64)
        kept2d = decompress_bitmap_batch(readers, n)
        if np.any(kept2d.sum(axis=1) != n_kept):
            raise CorruptDataError("RAZE bitmap population mismatch")
        tops_rows = [
            unpack_words(reader.raw(packed_size_bytes(int(c), k)), int(c), k, wb)
            for reader, c in zip(readers, n_kept)
        ]
        bottom_size = packed_size_bytes(n, wb - k)
        row_bits = n * (wb - k)
        if row_bits % 8 == 0:
            raw = b"".join(reader.raw(bottom_size) for reader in readers)
            bottoms2d = unpack_words(raw, len(readers) * n, wb - k, wb)
            bottoms2d = bottoms2d.reshape(len(readers), n)
        else:
            bottoms2d = np.stack(
                [
                    unpack_words(reader.raw(bottom_size), n, wb - k, wb)
                    for reader in readers
                ]
            )
        for reader in readers:
            reader.expect_exhausted()
        tops_full = np.zeros((len(readers), n), dtype=dtype)
        tops_full[kept2d] = np.concatenate(tops_rows)
        return (tops_full << (wb - k)) | bottoms2d

    def _decode_byte_rows(self, readers: list[Reader], n: int, kb: int) -> np.ndarray:
        word_bytes = self.word_bits // 8
        n_rows = len(readers)
        n_kept = np.array([reader.u32() for reader in readers], dtype=np.int64)
        mask2d = decompress_bitmap_batch(readers, n * kb)
        if np.any(mask2d.sum(axis=1) != n_kept):
            raise CorruptDataError("RAZE bitmap population mismatch")
        nonzero_rows = [
            np.frombuffer(reader.raw(int(c)), dtype=np.uint8)
            for reader, c in zip(readers, n_kept)
        ]
        bottom2d = np.stack(
            [
                np.frombuffer(reader.raw(n * (word_bytes - kb)), dtype=np.uint8)
                for reader in readers
            ]
        )
        for reader in readers:
            reader.expect_exhausted()
        top2d = np.zeros((n_rows, n * kb), dtype=np.uint8)
        top2d[mask2d] = np.concatenate(nonzero_rows)
        rows = np.empty((n_rows, n, word_bytes), dtype=np.uint8)
        rows[:, :, :kb] = top2d.reshape(n_rows, n, kb)
        rows[:, :, kb:] = bottom2d.reshape(n_rows, n, word_bytes - kb)
        be = rows.reshape(n_rows, n * word_bytes).view(np.dtype(f">u{word_bytes}"))
        return be.astype(np.dtype(f"<u{word_bytes}"))
