"""The paper's data transformations, as composable byte-view stages.

Each stage implements the :class:`Stage` interface: ``encode`` maps a
chunk's bytes to transformed bytes and ``decode`` is its exact inverse.
Codecs (``repro.core.codecs``) are pipelines of these stages; on
decompression the inverses run in reverse order, exactly as Figure 1 of
the paper prescribes.

Stages declare a word granularity.  Input bytes that do not fill a whole
word (only possible in the final chunk of an input) are carried through
verbatim by every stage, so pipelines remain lossless for arbitrary byte
lengths.

Zero-copy contract
------------------
Stage inputs are :data:`ByteLike` — ``bytes``, ``bytearray``, or a
C-contiguous ``memoryview``.  The engine hands each stage a *view* into
the chunk's window of the source buffer (no per-chunk slice copies), so
implementations must not assume ``bytes``: interpret the input through
``np.frombuffer`` / :func:`repro.bitpack.words_from_bytes` / the
:class:`repro.stages._frame.Reader` cursor, all of which accept any
buffer.  Outputs are always ``bytes``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Union

#: What a stage must accept as input: any C-contiguous byte buffer.
ByteLike = Union[bytes, bytearray, memoryview]


class Stage(ABC):
    """A reversible chunk-level data transformation.

    Subclasses set :attr:`name` (stable identifier used by the mini LC
    framework and in ablation benchmarks) and :attr:`word_bits` (the
    granularity at which the transformation interprets its input).
    """

    name: str = "stage"
    word_bits: int = 8

    @abstractmethod
    def encode(self, data: ByteLike) -> bytes:
        """Transform ``data``; the result must round-trip via :meth:`decode`."""

    @abstractmethod
    def decode(self, data: ByteLike) -> bytes:
        """Exact inverse of :meth:`encode`."""

    def encode_batch(self, chunks: list) -> list[bytes]:
        """Encode many independent chunks at once.

        The contract is strict byte-identity: ``encode_batch(chunks)[i]``
        must equal ``encode(chunks[i])`` for every chunk.  The base
        implementation is the per-chunk loop; hot stages override it with
        2D kernels that stack equal-length chunks into an
        ``(n_chunks, words_per_chunk)`` grid and run each transformation
        once for the whole batch.
        """
        return [self.encode(chunk) for chunk in chunks]

    def decode_batch(self, payloads: list) -> list[bytes]:
        """Inverse of :meth:`encode_batch`; ``[i]`` must equal
        ``decode(payloads[i])``.  Implementations may raise on any
        payload; the engine re-runs the failing batch per chunk so errors
        surface with serial-identical attribution."""
        return [self.decode(payload) for payload in payloads]

    def max_encoded_len(self, input_len: int) -> int:
        """Upper bound on ``len(encode(data))`` for ``input_len`` input bytes.

        Used as a decompression-bomb guard when this stage runs globally:
        a container whose declared intermediate length exceeds this bound
        is rejected before any buffer is allocated from it.  The default
        is generous (2x + framing); stages with exact arithmetic override.
        """
        return 2 * input_len + 64

    def decode_salvage(
        self, data: ByteLike, damaged_ranges
    ) -> tuple[bytes, tuple[tuple[int, int], ...]]:
        """Damage-aware inverse for salvage-mode decode.

        ``damaged_ranges`` lists (start, end) byte spans of ``data`` that
        were zero-filled because their chunk failed verification.  Returns
        the decoded bytes plus the output byte ranges that cannot be
        trusted.  The default is maximally conservative — any input
        damage taints the whole output; stages that can track propagation
        precisely (FCM) override this.
        """
        out = self.decode(data)
        damaged = ((0, len(out)),) if damaged_ranges else ()
        return out, damaged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(word_bits={self.word_bits})"


from repro.stages.bit_stage import BitTranspose
from repro.stages.diffms import DiffMS
from repro.stages.fcm import FCMStage
from repro.stages.mplg import MPLG
from repro.stages.rare import RARE
from repro.stages.raze import RAZE
from repro.stages.rze import RZE
from repro.stages.shuffle import ByteShuffle
from repro.stages.xor_delta import XorDelta

STAGE_TYPES = {
    cls.__name__: cls
    for cls in (DiffMS, MPLG, BitTranspose, RZE, RAZE, RARE, FCMStage,
                XorDelta, ByteShuffle)
}

__all__ = [
    "BitTranspose",
    "ByteLike",
    "ByteShuffle",
    "DiffMS",
    "FCMStage",
    "MPLG",
    "RARE",
    "RAZE",
    "RZE",
    "STAGE_TYPES",
    "Stage",
    "XorDelta",
]
