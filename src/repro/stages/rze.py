"""RZE: Repeated Zero Elimination, the final stage of SPratio.

Paper §3.2, Figure 5.  Operating at byte granularity (to maximise the
chance of finding zeros), RZE builds a bitmap with one bit per input
byte — set when the byte is nonzero — removes all zero bytes, and emits
the nonzero bytes plus the bitmap.  The "repeated" part is the paper's
enhancement: the bitmap itself is compressed by up to three rounds of
repeating-byte elimination (see :mod:`repro.stages._bitmap`), shrinking
the 16384-bit chunk bitmap to 32 bits plus the non-repeating bytes.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import CorruptDataError
from repro.stages import ByteLike, Stage
from repro.stages._batch import length_groups, split_rows, stack_rows
from repro.stages._bitmap import (
    MAX_LEVELS,
    compress_bitmap,
    compress_bitmap_batch,
    decompress_bitmap,
    decompress_bitmap_batch,
)
from repro.stages._frame import Reader, Writer


class RZE(Stage):
    """Byte-granular zero elimination with recursively compressed bitmap."""

    name = "rze"
    word_bits = 8

    def __init__(self, bitmap_levels: int = MAX_LEVELS) -> None:
        self.bitmap_levels = bitmap_levels

    def encode(self, data: ByteLike) -> bytes:
        buf = np.frombuffer(data, dtype=np.uint8)
        nonzero_mask = buf != 0
        nonzero = buf[nonzero_mask]
        writer = Writer()
        writer.u32(len(buf))
        writer.u32(len(nonzero))
        writer.raw(nonzero.tobytes())
        writer.raw(compress_bitmap(nonzero_mask, self.bitmap_levels))
        return writer.getvalue()

    def decode(self, data: ByteLike) -> bytes:
        reader = Reader(data)
        n = reader.u32()
        n_nonzero = reader.u32()
        nonzero = np.frombuffer(reader.raw(n_nonzero), dtype=np.uint8)
        mask = decompress_bitmap(reader, n)
        reader.expect_exhausted()
        if int(mask.sum()) != n_nonzero:
            raise CorruptDataError("RZE bitmap population mismatch")
        out = np.zeros(n, dtype=np.uint8)
        out[mask] = nonzero
        return out.tobytes()

    # -- batched execution ------------------------------------------------

    def encode_batch(self, chunks: list) -> list[bytes]:
        out: list[bytes | None] = [None] * len(chunks)
        for length, indices in length_groups(chunks).items():
            if len(indices) < 2 or length == 0:
                for i in indices:
                    out[i] = self.encode(chunks[i])
                continue
            rows = stack_rows(chunks, indices, length)
            mask2d = rows != 0
            counts = mask2d.sum(axis=1)
            nonzero = split_rows(rows[mask2d], counts)
            bitmaps = compress_bitmap_batch(mask2d, self.bitmap_levels)
            for row, i in enumerate(indices):
                out[i] = b"".join(
                    (
                        struct.pack("<II", length, int(counts[row])),
                        nonzero[row].tobytes(),
                        bitmaps[row],
                    )
                )
        return out

    def decode_batch(self, payloads: list) -> list[bytes]:
        # RZE payloads vary in length (the nonzero count differs per
        # chunk), so batching groups on the *decoded* length ``n`` instead:
        # the bitmap decompressor only needs a shared bit count.
        out: list[bytes | None] = [None] * len(payloads)
        parsed: dict[int, list[tuple[int, int, np.ndarray, Reader]]] = {}
        for i, payload in enumerate(payloads):
            reader = Reader(payload)
            n = reader.u32()
            n_nonzero = reader.u32()
            nonzero = np.frombuffer(reader.raw(n_nonzero), dtype=np.uint8)
            parsed.setdefault(n, []).append((i, n_nonzero, nonzero, reader))
        for n, members in parsed.items():
            if len(members) < 2:
                for i, _, _, _ in members:
                    out[i] = self.decode(payloads[i])
                continue
            readers = [reader for _, _, _, reader in members]
            mask2d = decompress_bitmap_batch(readers, n)
            for reader in readers:
                reader.expect_exhausted()
            populations = mask2d.sum(axis=1)
            expected = np.array([m[1] for m in members], dtype=np.int64)
            if np.any(populations != expected):
                raise CorruptDataError("RZE bitmap population mismatch")
            grid = np.zeros((len(members), n), dtype=np.uint8)
            grid[mask2d] = np.concatenate([m[2] for m in members])
            blob = grid.tobytes()
            for row, (i, _, _, _) in enumerate(members):
                out[i] = blob[row * n : (row + 1) * n]
        return out
