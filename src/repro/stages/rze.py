"""RZE: Repeated Zero Elimination, the final stage of SPratio.

Paper §3.2, Figure 5.  Operating at byte granularity (to maximise the
chance of finding zeros), RZE builds a bitmap with one bit per input
byte — set when the byte is nonzero — removes all zero bytes, and emits
the nonzero bytes plus the bitmap.  The "repeated" part is the paper's
enhancement: the bitmap itself is compressed by up to three rounds of
repeating-byte elimination (see :mod:`repro.stages._bitmap`), shrinking
the 16384-bit chunk bitmap to 32 bits plus the non-repeating bytes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CorruptDataError
from repro.stages import ByteLike, Stage
from repro.stages._bitmap import MAX_LEVELS, compress_bitmap, decompress_bitmap
from repro.stages._frame import Reader, Writer


class RZE(Stage):
    """Byte-granular zero elimination with recursively compressed bitmap."""

    name = "rze"
    word_bits = 8

    def __init__(self, bitmap_levels: int = MAX_LEVELS) -> None:
        self.bitmap_levels = bitmap_levels

    def encode(self, data: ByteLike) -> bytes:
        buf = np.frombuffer(data, dtype=np.uint8)
        nonzero_mask = buf != 0
        nonzero = buf[nonzero_mask]
        writer = Writer()
        writer.u32(len(buf))
        writer.u32(len(nonzero))
        writer.raw(nonzero.tobytes())
        writer.raw(compress_bitmap(nonzero_mask, self.bitmap_levels))
        return writer.getvalue()

    def decode(self, data: ByteLike) -> bytes:
        reader = Reader(data)
        n = reader.u32()
        n_nonzero = reader.u32()
        nonzero = np.frombuffer(reader.raw(n_nonzero), dtype=np.uint8)
        mask = decompress_bitmap(reader, n)
        reader.expect_exhausted()
        if int(mask.sum()) != n_nonzero:
            raise CorruptDataError("RZE bitmap population mismatch")
        out = np.zeros(n, dtype=np.uint8)
        out[mask] = nonzero
        return out.tobytes()
