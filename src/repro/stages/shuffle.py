"""SHUF: byte shuffle — group equal byte positions of every word.

The byte-granular cousin of the BIT stage, used by SPDP (paper §2.1) and
classic HDF5/Blosc filters.  Groups byte 0 of every word, then byte 1,
and so on, so the near-constant exponent bytes form long runs.  Part of
the LC component catalogue ("we also make use of difference coding and
byte shuffling", §2.1).
"""

from __future__ import annotations

from repro.bitpack import byte_shuffle, byte_unshuffle
from repro.stages import Stage


class ByteShuffle(Stage):
    """Byte transposition at the word granularity."""

    name = "shuf"

    def __init__(self, word_bits: int = 32) -> None:
        if word_bits not in (16, 32, 64):
            raise ValueError("SHUF operates at 16-, 32-, or 64-bit granularity")
        self.word_bits = word_bits

    def encode(self, data: bytes) -> bytes:
        return byte_shuffle(data, self.word_bits // 8)

    def decode(self, data: bytes) -> bytes:
        return byte_unshuffle(data, self.word_bits // 8)
