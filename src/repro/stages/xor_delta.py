"""XORDELTA: residual against the previous word by XOR.

The alternative to DIFFMS's subtraction that ndzip's integer Lorenzo
transform uses (paper §2.1): XOR never carries, so shared high bits of
neighbouring values cancel to zero *bit planes* (ideal before BIT),
whereas subtraction produces small *numbers* (ideal before MPLG/RAZE).
Part of the LC component catalogue — the paper's search considered both
and picked subtraction for the final designs.
"""

from __future__ import annotations

import numpy as np

from repro.bitpack import words_from_bytes, words_to_bytes
from repro.stages import Stage


class XorDelta(Stage):
    """XOR each word with its predecessor (first word kept as-is)."""

    name = "xordelta"

    def __init__(self, word_bits: int = 32) -> None:
        if word_bits not in (32, 64):
            raise ValueError("XORDELTA operates at 32- or 64-bit granularity")
        self.word_bits = word_bits

    def encode(self, data: bytes) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        prev = np.zeros_like(words)
        if len(words):
            prev[1:] = words[:-1]
        return words_to_bytes(words ^ prev, tail)

    def decode(self, data: bytes) -> bytes:
        coded, tail = words_from_bytes(data, self.word_bits)
        # Prefix-XOR scan (Hillis-Steele; log-depth on a GPU).
        words = coded.copy()
        shift = 1
        n = len(words)
        while shift < n:
            words[shift:] ^= words[:-shift].copy()
            shift *= 2
        return words_to_bytes(words, tail)
