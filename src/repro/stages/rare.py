"""RARE: Repeated Adaptive Repetition Elimination (fourth stage of DPratio).

Paper §3.2: identical mechanics to RAZE, except the predicate is not
"the top-``k`` bits are all zero" but "the top-``k`` bits equal those of
the *prior* value".  RAZE's output tends to contain runs of identical
most-significant bit patterns, which this stage removes.  The adaptive
``k`` comes from a histogram of leading-*common*-bit counts; the value
preceding a chunk is taken to be 0.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.bitpack import (
    count_leading_zeros,
    leading_common_bits,
    pack_words,
    packed_size_bytes,
    unpack_words,
    words_from_bytes,
    words_to_bytes,
)
from repro.errors import CorruptDataError
from repro.stages import ByteLike, Stage
from repro.stages._adaptive import choose_k, choose_k_rows
from repro.stages._batch import length_groups, split_rows, stack_rows
from repro.stages._bitmap import (
    compress_bitmap,
    compress_bitmap_batch,
    decompress_bitmap,
    decompress_bitmap_batch,
)
from repro.stages._frame import Reader, Writer


class RARE(Stage):
    """Adaptive top-``k`` repetition elimination at 32- or 64-bit grain."""

    name = "rare"

    def __init__(self, word_bits: int = 64) -> None:
        if word_bits not in (32, 64):
            raise ValueError("RARE operates at 32- or 64-bit granularity")
        self.word_bits = word_bits

    def encode(self, data: ByteLike) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        wb = self.word_bits
        common = leading_common_bits(words, wb)
        k = choose_k(common, len(words), wb)
        writer = Writer()
        writer.u32(len(words))
        writer.u8(len(tail))
        writer.raw(tail)
        writer.u8(k)
        if k == 0:
            writer.raw(words_to_bytes(words))
            return writer.getvalue()
        # The top piece must be stored when it differs from the prior one.
        kept_mask = common < k
        tops = (words >> (wb - k))[kept_mask]
        if k == wb:
            bottoms = np.zeros_like(words)
        else:
            bottoms = words & words.dtype.type((1 << (wb - k)) - 1)
        writer.u32(int(kept_mask.sum()))
        writer.raw(compress_bitmap(kept_mask))
        writer.raw(pack_words(tops, k, wb))
        writer.raw(pack_words(bottoms, wb - k, wb))
        return writer.getvalue()

    def decode(self, data: ByteLike) -> bytes:
        reader = Reader(data)
        n = reader.u32()
        tail = reader.raw(reader.u8())
        k = reader.u8()
        wb = self.word_bits
        if k > wb:
            raise CorruptDataError(f"RARE split {k} exceeds word size")
        dtype = np.dtype(f"<u{wb // 8}")
        if k == 0:
            words = np.frombuffer(reader.raw(n * dtype.itemsize), dtype=dtype)
            reader.expect_exhausted()
            return words_to_bytes(words, tail)
        n_kept = reader.u32()
        kept_mask = decompress_bitmap(reader, n)
        if int(kept_mask.sum()) != n_kept:
            raise CorruptDataError("RARE bitmap population mismatch")
        tops = unpack_words(reader.raw(packed_size_bytes(n_kept, k)), n_kept, k, wb)
        bottoms = unpack_words(reader.raw(packed_size_bytes(n, wb - k)), n, wb - k, wb)
        reader.expect_exhausted()
        # Forward-fill: an unkept top piece repeats the previous value's top
        # piece; the piece before the chunk is 0.
        counts = np.cumsum(kept_mask)
        tops_full = np.zeros(n, dtype=dtype)
        has_prior = counts > 0
        if n:
            tops_full[has_prior] = tops[counts[has_prior] - 1]
        words = (tops_full << (wb - k)) | bottoms
        return words_to_bytes(words, tail)

    # -- batched execution ------------------------------------------------

    def encode_batch(self, chunks: list) -> list[bytes]:
        out: list[bytes | None] = [None] * len(chunks)
        wb = self.word_bits
        word_bytes = wb // 8
        for length, indices in length_groups(chunks).items():
            n = length // word_bytes
            if len(indices) < 2 or length == 0 or length % word_bytes:
                for i in indices:
                    out[i] = self.encode(chunks[i])
                continue
            words2d = stack_rows(chunks, indices, length).view(
                np.dtype(f"<u{word_bytes}")
            )
            prev2d = np.empty_like(words2d)
            prev2d[:, 0] = 0
            prev2d[:, 1:] = words2d[:, :-1]
            common2d = count_leading_zeros(words2d ^ prev2d, wb)
            k_rows, _ = choose_k_rows(common2d, n, wb)
            prefix = struct.pack("<IB", n, 0)
            for k in np.unique(k_rows):
                members = np.flatnonzero(k_rows == k)
                self._encode_rows(
                    words2d, common2d, members, n, int(k), prefix, out, indices
                )
        return out

    def _encode_rows(
        self,
        words2d: np.ndarray,
        common2d: np.ndarray,
        members: np.ndarray,
        n: int,
        k: int,
        prefix: bytes,
        out: list,
        indices: list[int],
    ) -> None:
        wb = self.word_bits
        header = prefix + struct.pack("<B", k)
        if k == 0:
            for r in members:
                out[indices[r]] = header + words2d[r].tobytes()
            return
        sub = words2d[members]
        kept2d = np.asarray(common2d[members]) < k
        counts = kept2d.sum(axis=1)
        tops = split_rows((sub >> (wb - k))[kept2d], counts)
        if k == wb:
            bottoms = [b""] * len(members)
        else:
            bottoms2d = sub & sub.dtype.type((1 << (wb - k)) - 1)
            row_bits = n * (wb - k)
            if row_bits % 8 == 0:
                blob = pack_words(bottoms2d.reshape(-1), wb - k, wb)
                size = row_bits // 8
                bottoms = [blob[r * size : (r + 1) * size] for r in range(len(members))]
            else:
                bottoms = [pack_words(row, wb - k, wb) for row in bottoms2d]
        bitmaps = compress_bitmap_batch(kept2d)
        for row, r in enumerate(members):
            out[indices[r]] = b"".join(
                (
                    header,
                    struct.pack("<I", int(counts[row])),
                    bitmaps[row],
                    pack_words(tops[row], k, wb),
                    bottoms[row],
                )
            )

    def decode_batch(self, payloads: list) -> list[bytes]:
        out: list[bytes | None] = [None] * len(payloads)
        wb = self.word_bits
        word_bytes = wb // 8
        groups: dict[tuple[int, int], list[tuple[int, Reader]]] = {}
        serial: list[int] = []
        for i, payload in enumerate(payloads):
            reader = Reader(payload)
            n = reader.u32()
            tail_len = reader.u8()
            if tail_len or n == 0 or reader.remaining < 1:
                serial.append(i)
                continue
            k = reader.u8()
            if 1 <= k <= wb:
                groups.setdefault((n, k), []).append((i, reader))
            else:
                serial.append(i)
        for (n, k), members in groups.items():
            if len(members) < 2:
                serial.extend(i for i, _ in members)
                continue
            readers = [reader for _, reader in members]
            words2d = self._decode_rows(readers, n, k)
            blob = words2d.tobytes()
            size = n * word_bytes
            for row, (i, _) in enumerate(members):
                out[i] = blob[row * size : (row + 1) * size]
        for i in serial:
            out[i] = self.decode(payloads[i])
        return out

    def _decode_rows(self, readers: list[Reader], n: int, k: int) -> np.ndarray:
        wb = self.word_bits
        dtype = np.dtype(f"<u{wb // 8}")
        n_kept = np.array([reader.u32() for reader in readers], dtype=np.int64)
        kept2d = decompress_bitmap_batch(readers, n)
        if np.any(kept2d.sum(axis=1) != n_kept):
            raise CorruptDataError("RARE bitmap population mismatch")
        tops_rows = [
            unpack_words(reader.raw(packed_size_bytes(int(c), k)), int(c), k, wb)
            for reader, c in zip(readers, n_kept)
        ]
        bottom_size = packed_size_bytes(n, wb - k)
        row_bits = n * (wb - k)
        if row_bits % 8 == 0:
            raw = b"".join(reader.raw(bottom_size) for reader in readers)
            bottoms2d = unpack_words(raw, len(readers) * n, wb - k, wb)
            bottoms2d = bottoms2d.reshape(len(readers), n)
        else:
            bottoms2d = np.stack(
                [
                    unpack_words(reader.raw(bottom_size), n, wb - k, wb)
                    for reader in readers
                ]
            )
        for reader in readers:
            reader.expect_exhausted()
        # Vectorised forward-fill: per-row running count of kept pieces
        # indexes into that row's slice of the concatenated tops.
        counts2d = np.cumsum(kept2d, axis=1)
        offsets = np.zeros(len(readers), dtype=np.int64)
        np.cumsum(n_kept[:-1], out=offsets[1:])
        tops_flat = (
            np.concatenate(tops_rows) if tops_rows else np.zeros(0, dtype=dtype)
        )
        tops_full = np.zeros((len(readers), n), dtype=dtype)
        has_prior = counts2d > 0
        idx = counts2d - 1 + offsets[:, None]
        tops_full[has_prior] = tops_flat[idx[has_prior]]
        return (tops_full << (wb - k)) | bottoms2d
