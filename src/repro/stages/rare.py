"""RARE: Repeated Adaptive Repetition Elimination (fourth stage of DPratio).

Paper §3.2: identical mechanics to RAZE, except the predicate is not
"the top-``k`` bits are all zero" but "the top-``k`` bits equal those of
the *prior* value".  RAZE's output tends to contain runs of identical
most-significant bit patterns, which this stage removes.  The adaptive
``k`` comes from a histogram of leading-*common*-bit counts; the value
preceding a chunk is taken to be 0.
"""

from __future__ import annotations

import numpy as np

from repro.bitpack import (
    leading_common_bits,
    pack_words,
    packed_size_bytes,
    unpack_words,
    words_from_bytes,
    words_to_bytes,
)
from repro.errors import CorruptDataError
from repro.stages import ByteLike, Stage
from repro.stages._adaptive import choose_k
from repro.stages._bitmap import compress_bitmap, decompress_bitmap
from repro.stages._frame import Reader, Writer


class RARE(Stage):
    """Adaptive top-``k`` repetition elimination at 32- or 64-bit grain."""

    name = "rare"

    def __init__(self, word_bits: int = 64) -> None:
        if word_bits not in (32, 64):
            raise ValueError("RARE operates at 32- or 64-bit granularity")
        self.word_bits = word_bits

    def encode(self, data: ByteLike) -> bytes:
        words, tail = words_from_bytes(data, self.word_bits)
        wb = self.word_bits
        common = leading_common_bits(words, wb)
        k = choose_k(common, len(words), wb)
        writer = Writer()
        writer.u32(len(words))
        writer.u8(len(tail))
        writer.raw(tail)
        writer.u8(k)
        if k == 0:
            writer.raw(words_to_bytes(words))
            return writer.getvalue()
        # The top piece must be stored when it differs from the prior one.
        kept_mask = common < k
        tops = (words >> (wb - k))[kept_mask]
        if k == wb:
            bottoms = np.zeros_like(words)
        else:
            bottoms = words & words.dtype.type((1 << (wb - k)) - 1)
        writer.u32(int(kept_mask.sum()))
        writer.raw(compress_bitmap(kept_mask))
        writer.raw(pack_words(tops, k, wb))
        writer.raw(pack_words(bottoms, wb - k, wb))
        return writer.getvalue()

    def decode(self, data: ByteLike) -> bytes:
        reader = Reader(data)
        n = reader.u32()
        tail = reader.raw(reader.u8())
        k = reader.u8()
        wb = self.word_bits
        if k > wb:
            raise CorruptDataError(f"RARE split {k} exceeds word size")
        dtype = np.dtype(f"<u{wb // 8}")
        if k == 0:
            words = np.frombuffer(reader.raw(n * dtype.itemsize), dtype=dtype)
            reader.expect_exhausted()
            return words_to_bytes(words, tail)
        n_kept = reader.u32()
        kept_mask = decompress_bitmap(reader, n)
        if int(kept_mask.sum()) != n_kept:
            raise CorruptDataError("RARE bitmap population mismatch")
        tops = unpack_words(reader.raw(packed_size_bytes(n_kept, k)), n_kept, k, wb)
        bottoms = unpack_words(reader.raw(packed_size_bytes(n, wb - k)), n, wb - k, wb)
        reader.expect_exhausted()
        # Forward-fill: an unkept top piece repeats the previous value's top
        # piece; the piece before the chunk is 0.
        counts = np.cumsum(kept_mask)
        tops_full = np.zeros(n, dtype=dtype)
        has_prior = counts > 0
        if n:
            tops_full[has_prior] = tops[counts[has_prior] - 1]
        words = (tops_full << (wb - k)) | bottoms
        return words_to_bytes(words, tail)
