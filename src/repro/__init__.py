"""repro — lossless compression of scientific floating-point data.

A from-scratch Python reproduction of

    Azami, Fallin, Burtscher: "Efficient Lossless Compression of
    Scientific Floating-Point Data on CPUs and GPUs", ASPLOS 2025.

The package provides the paper's four codecs (SPspeed, SPratio, DPspeed,
DPratio) behind a two-function API (:func:`compress` /
:func:`decompress`), faithful reimplementations of the 18 baseline
compressors it evaluates against (:mod:`repro.baselines`), synthetic
SDRBench-like datasets (:mod:`repro.datasets`), the CPU/GPU execution
model used to reproduce the paper's throughput figures
(:mod:`repro.device`), and the benchmark harness regenerating
Figures 8-19 (:mod:`repro.harness`).
"""

from repro.api import (
    available_codecs,
    compress,
    concat,
    connect,
    decompress,
    decompress_range,
    inspect,
)
from repro.archive import Archive, append_archive, write_archive
from repro.reader import ContainerReader
from repro.core import (
    CODECS,
    Codec,
    ChunkFailure,
    ContainerInfo,
    SalvageReport,
    codec_for,
    get_codec,
)
from repro.errors import (
    BoundsError,
    BusyError,
    ChecksumError,
    CorruptDataError,
    DeadlineExceededError,
    FormatError,
    ProtocolError,
    RemoteError,
    ReproError,
    ServiceError,
    UnknownCodecError,
    UnsupportedDtypeError,
)

__version__ = "1.3.0"

__all__ = [
    "BoundsError",
    "BusyError",
    "CODECS",
    "ChecksumError",
    "ChunkFailure",
    "Codec",
    "ContainerInfo",
    "CorruptDataError",
    "DeadlineExceededError",
    "FormatError",
    "ProtocolError",
    "RemoteError",
    "ReproError",
    "SalvageReport",
    "ServiceError",
    "UnknownCodecError",
    "UnsupportedDtypeError",
    "Archive",
    "ContainerReader",
    "append_archive",
    "available_codecs",
    "codec_for",
    "compress",
    "concat",
    "connect",
    "decompress",
    "decompress_range",
    "get_codec",
    "inspect",
    "write_archive",
    "__version__",
]
