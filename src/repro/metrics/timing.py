"""Wall-clock throughput measurement (the *measured* numbers).

The paper times the median of five identical runs and excludes I/O
(§4).  These helpers do the same for the Python implementations; the
resulting numbers quantify this reproduction's own speed and are
reported alongside — never mixed with — the device-model throughputs.
"""

from __future__ import annotations

import statistics
import time
from collections.abc import Callable

#: Number of identical runs whose median is reported (paper §4: five).
DEFAULT_RUNS = 5


def measure_throughput(
    fn: Callable[[], object],
    data_len: int,
    *,
    runs: int = DEFAULT_RUNS,
) -> float:
    """Median-of-``runs`` throughput of ``fn`` in bytes per second."""
    if runs < 1:
        raise ValueError("need at least one run")
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    median = statistics.median(times)
    if median <= 0:
        median = 1e-9
    return data_len / median
