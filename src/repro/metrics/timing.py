"""Wall-clock throughput measurement (the *measured* numbers).

The paper times the median of five identical runs and excludes I/O
(§4).  These helpers do the same for the Python implementations; the
resulting numbers quantify this reproduction's own speed and are
reported alongside — never mixed with — the device-model throughputs.

The second half of this module aggregates the engine's per-chunk
:class:`~repro.core.trace.ChunkTrace` records (stage timings, stage
output sizes, raw-fallback counts) into summaries — the consistent
measurement plumbing a credible cross-codec comparison needs.
"""

from __future__ import annotations

import statistics
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.core.trace import BatchTrace, ChunkTrace, TraceCollector

#: Number of identical runs whose median is reported (paper §4: five).
DEFAULT_RUNS = 5


def measure_throughput(
    fn: Callable[[], object],
    data_len: int,
    *,
    runs: int = DEFAULT_RUNS,
) -> float:
    """Median-of-``runs`` throughput of ``fn`` in bytes per second."""
    if runs < 1:
        raise ValueError("need at least one run")
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    median = statistics.median(times)
    if median <= 0:
        median = 1e-9
    return data_len / median


@dataclass(frozen=True)
class StageTotals:
    """One stage's aggregate over all chunks of an engine run."""

    stage: str
    calls: int
    seconds: float
    out_bytes: int


def stage_totals(
    traces: Iterable[ChunkTrace],
    batches: Iterable[BatchTrace] = (),
) -> list[StageTotals]:
    """Aggregate per-chunk and per-batch stage events in execution order.

    Batched chunks carry empty ``stages`` tuples (their stage timings
    live on the block's :class:`~repro.core.trace.BatchTrace`), so the
    batch events are folded in alongside — one batch stage event counts
    as ``n_chunks`` calls, keeping ``calls`` comparable across execution
    modes.
    """
    order: list[str] = []
    calls: dict[str, int] = {}
    seconds: dict[str, float] = {}
    out_bytes: dict[str, int] = {}

    def fold(event, n_calls: int) -> None:
        if event.stage not in calls:
            order.append(event.stage)
            calls[event.stage] = 0
            seconds[event.stage] = 0.0
            out_bytes[event.stage] = 0
        calls[event.stage] += n_calls
        seconds[event.stage] += event.seconds
        out_bytes[event.stage] += event.out_bytes

    for trace in traces:
        for event in trace.stages:
            fold(event, 1)
    for batch in batches:
        for event in batch.stages:
            fold(event, batch.n_chunks)
    return [
        StageTotals(name, calls[name], seconds[name], out_bytes[name])
        for name in order
    ]


@dataclass(frozen=True)
class TraceSummary:
    """One engine run, aggregated from its per-chunk traces."""

    direction: str
    policy: str
    workers: int
    n_chunks: int
    raw_chunks: int
    input_bytes: int
    payload_bytes: int
    #: summed busy time across chunks (not wall clock: workers overlap).
    chunk_seconds: float
    stages: tuple[StageTotals, ...]
    #: how many chunks ran inside batched blocks.
    batched_chunks: int = 0

    def render(self) -> str:
        lines = [
            f"{self.direction} [{self.policy}, {self.workers} worker(s)]: "
            f"{self.n_chunks} chunks ({self.batched_chunks} batched), "
            f"{self.raw_chunks} raw fallback(s), "
            f"{self.input_bytes} -> {self.payload_bytes} payload bytes"
        ]
        for st in self.stages:
            lines.append(
                f"  {st.stage:<8} {st.seconds * 1e3:>9.3f} ms "
                f"{st.out_bytes:>12} B out  ({st.calls} chunks)"
            )
        return "\n".join(lines)


def summarize_trace(collector: TraceCollector) -> TraceSummary:
    """Fold a collector's chunk traces into one :class:`TraceSummary`."""
    chunks = collector.chunks
    return TraceSummary(
        direction=collector.direction or "?",
        policy=collector.policy or "?",
        workers=collector.workers or 1,
        n_chunks=len(chunks),
        raw_chunks=collector.raw_chunks,
        input_bytes=sum(t.original_len for t in chunks),
        payload_bytes=sum(t.payload_len for t in chunks),
        chunk_seconds=sum(t.seconds for t in chunks),
        stages=tuple(stage_totals(chunks, collector.batches)),
        batched_chunks=sum(1 for t in chunks if t.batched),
    )
