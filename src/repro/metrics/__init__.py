"""Evaluation metrics: ratios, geometric means, Pareto fronts, timing."""

from repro.metrics.pareto import ParetoPoint, pareto_front
from repro.metrics.ratios import compression_ratio, geo_of_geo, geomean
from repro.metrics.timing import measure_throughput

__all__ = [
    "ParetoPoint",
    "compression_ratio",
    "geo_of_geo",
    "geomean",
    "measure_throughput",
    "pareto_front",
]
