"""Evaluation metrics: ratios, geometric means, Pareto fronts, timing."""

from repro.metrics.pareto import ParetoPoint, pareto_front
from repro.metrics.ratios import compression_ratio, geo_of_geo, geomean
from repro.metrics.timing import (
    StageTotals,
    TraceSummary,
    measure_throughput,
    stage_totals,
    summarize_trace,
)

__all__ = [
    "ParetoPoint",
    "StageTotals",
    "TraceSummary",
    "compression_ratio",
    "geo_of_geo",
    "geomean",
    "measure_throughput",
    "pareto_front",
    "stage_totals",
    "summarize_trace",
]
