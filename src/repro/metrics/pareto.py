"""Pareto-front extraction for the ratio-vs-throughput scatter plots.

"All compressors that lie on this front are *optimal* in the sense that
there is no other compressor that is both faster and compresses more"
(paper §4, citing [29]).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParetoPoint:
    """One compressor's position in a figure."""

    name: str
    throughput: float  # GB/s, x-axis
    ratio: float       # compression ratio, y-axis

    def dominates(self, other: "ParetoPoint") -> bool:
        """True if this point is at least as good on both axes and strictly
        better on one."""
        at_least = self.throughput >= other.throughput and self.ratio >= other.ratio
        strictly = self.throughput > other.throughput or self.ratio > other.ratio
        return at_least and strictly


def pareto_front(points: list[ParetoPoint]) -> list[ParetoPoint]:
    """The non-dominated subset, sorted by descending throughput."""
    front = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(front, key=lambda p: (-p.throughput, -p.ratio))
