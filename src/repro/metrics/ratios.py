"""Compression-ratio aggregation, following the paper's methodology (§4).

"We compute the geometric-mean compression ratio ... for each of those 7
single-precision and 5 double-precision datasets and report the
geometric-mean of all geometric-means for each compressor.  We do this so
as not to over-weigh the datasets that contain more files than others."
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def compression_ratio(original_len: int, compressed_len: int) -> float:
    """Initial size divided by compressed size (higher is better)."""
    if compressed_len <= 0:
        raise ValueError("compressed length must be positive")
    return original_len / compressed_len


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; rejects empty input and non-positive values."""
    logs = []
    for v in values:
        if v <= 0:
            raise ValueError(f"geometric mean requires positive values, got {v}")
        logs.append(math.log(v))
    if not logs:
        raise ValueError("geometric mean of an empty sequence")
    return math.exp(sum(logs) / len(logs))


def geo_of_geo(groups: Sequence[Sequence[float]]) -> float:
    """Geometric mean of per-group geometric means (the paper's aggregate)."""
    return geomean(geomean(group) for group in groups)
