"""Bit-level statistics behind floating-point compressibility."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitpack import count_leading_zeros
from repro.bitpack.zigzag import zigzag_encode
from repro.errors import UnsupportedDtypeError


def _words_of(data: np.ndarray) -> tuple[np.ndarray, int]:
    data = np.asarray(data)
    if data.dtype == np.float32:
        return data.reshape(-1).view(np.uint32), 32
    if data.dtype == np.float64:
        return data.reshape(-1).view(np.uint64), 64
    raise UnsupportedDtypeError(f"diagnostics need float32/float64, got {data.dtype}")


@dataclass(frozen=True)
class Smoothness:
    """Difference statistics of the integer word stream."""

    word_bits: int
    mean_diff_bits: float     # average significant bits in the DIFFMS output
    zero_diff_fraction: float # consecutive exact repeats
    #: differences whose codes keep at least 3/8 of the word as leading
    #: zeros — the bits DIFFMS-based codecs harvest
    small_diff_fraction: float

    @property
    def is_smooth(self) -> bool:
        return self.small_diff_fraction > 0.5


def smoothness(data: np.ndarray) -> Smoothness:
    """How DIFFMS-friendly the data is (paper §3: 'relatively smooth')."""
    words, wb = _words_of(data)
    if len(words) == 0:
        return Smoothness(wb, 0.0, 0.0, 0.0)
    prev = np.zeros_like(words)
    prev[1:] = words[:-1]
    coded = zigzag_encode(words - prev, wb)
    bits = wb - count_leading_zeros(coded, wb).astype(np.int64)
    return Smoothness(
        word_bits=wb,
        mean_diff_bits=float(bits.mean()),
        zero_diff_fraction=float((coded == 0).mean()),
        small_diff_fraction=float((bits <= (5 * wb) // 8).mean()),
    )


def leading_zero_profile(data: np.ndarray, *, after_diff: bool = True) -> np.ndarray:
    """Histogram of per-value leading-zero counts (length word_bits + 1).

    With ``after_diff`` the profile describes the DIFFMS output — exactly
    the histogram RAZE's adaptive split is computed from (§3.2, Fig. 7).
    """
    words, wb = _words_of(data)
    if after_diff and len(words):
        prev = np.zeros_like(words)
        prev[1:] = words[:-1]
        words = zigzag_encode(words - prev, wb)
    clz = count_leading_zeros(words, wb)
    return np.bincount(clz.astype(np.int64), minlength=wb + 1)


def byte_plane_entropy(data: np.ndarray) -> np.ndarray:
    """Shannon entropy (bits/byte) of each byte position, MSB first.

    Scientific data typically shows near-zero entropy in the exponent
    bytes and near-8-bit entropy in the low mantissa bytes — the gradient
    BIT/RZE and byte shuffles exploit, and the reason DPratio keeps the
    bottom ``64-k`` bits verbatim.
    """
    words, wb = _words_of(data)
    word_bytes = wb // 8
    if len(words) == 0:
        return np.zeros(word_bytes)
    rows = words.astype(words.dtype.newbyteorder(">"), copy=False).view(np.uint8)
    rows = rows.reshape(len(words), word_bytes)
    entropies = np.empty(word_bytes)
    for plane in range(word_bytes):
        counts = np.bincount(rows[:, plane], minlength=256)
        probs = counts[counts > 0] / len(words)
        entropies[plane] = float(-(probs * np.log2(probs)).sum())
    return entropies


@dataclass(frozen=True)
class RepeatProfile:
    """Exact value-repeat statistics (FCM/FPC's food)."""

    unique_fraction: float
    repeat_fraction: float          # values seen earlier anywhere
    near_repeat_fraction: float     # previous occurrence within the LZ window
    far_repeat_fraction: float      # previous occurrence beyond it

    @property
    def favors_fcm(self) -> bool:
        """Far repeats are invisible to sliding-window LZ but not to FCM."""
        return self.far_repeat_fraction > 0.05


#: A 32 KiB LZ window, in values, for the near/far split.
def repeat_profile(data: np.ndarray, *, window_bytes: int = 32768) -> RepeatProfile:
    words, wb = _words_of(data)
    n = len(words)
    if n == 0:
        return RepeatProfile(0.0, 0.0, 0.0, 0.0)
    window = max(1, window_bytes // (wb // 8))
    order = np.argsort(words, kind="stable")
    sorted_words = words[order]
    same_as_prev = np.zeros(n, dtype=bool)
    same_as_prev[1:] = sorted_words[1:] == sorted_words[:-1]
    # Distance to the nearest previous occurrence (within equal runs the
    # stable sort keeps original order, so neighbours are closest pairs).
    distances = np.zeros(n, dtype=np.int64)
    distances[1:] = order[1:] - order[:-1]
    repeats = same_as_prev
    near = repeats & (distances <= window)
    return RepeatProfile(
        unique_fraction=float(len(np.unique(words)) / n),
        repeat_fraction=float(repeats.mean()),
        near_repeat_fraction=float(near.mean()),
        far_repeat_fraction=float((repeats & ~near).mean()),
    )
