"""Per-stage size waterfalls and codec recommendation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chunking import CHUNK_SIZE, iter_chunks
from repro.core.codecs import Codec, get_codec
from repro.errors import UnsupportedDtypeError


@dataclass(frozen=True)
class StageBreakdown:
    """How many bytes each stage of a codec leaves behind on given data."""

    codec: str
    original: int
    #: (stage name, bytes after the stage), in pipeline order; the global
    #: stage (FCM) appears first when the codec has one.
    waterfall: tuple[tuple[str, int], ...]
    compressed: int

    @property
    def ratio(self) -> float:
        return self.original / self.compressed if self.compressed else 0.0

    def render(self) -> str:
        lines = [f"{self.codec}: {self.original} B original"]
        for name, size in self.waterfall:
            pct = 100.0 * size / self.original if self.original else 0.0
            lines.append(f"  after {name:<8} {size:>10} B  ({pct:6.1f}%)")
        lines.append(f"  container   {self.compressed:>10} B  "
                     f"(ratio {self.ratio:.3f})")
        return "\n".join(lines)


def explain(data: np.ndarray | bytes, codec: str) -> StageBreakdown:
    """Run ``codec``'s pipeline stage by stage and record the sizes.

    The waterfall shows where a codec earns (or wastes) its bytes: e.g.
    DPratio's FCM stage *doubles* the data before the later stages win it
    back — exactly the behaviour paper §3.2 describes.
    """
    chosen: Codec = get_codec(codec)
    if isinstance(data, np.ndarray):
        raw = np.ascontiguousarray(data).tobytes()
    else:
        raw = bytes(data)
    waterfall: list[tuple[str, int]] = []
    intermediate = raw
    global_stage = chosen.make_global_stage()
    if global_stage is not None:
        intermediate = global_stage.encode(raw)
        waterfall.append((global_stage.name, len(intermediate)))
    stages = chosen.make_pipeline().stages
    chunks = list(iter_chunks(intermediate, CHUNK_SIZE))
    running = chunks
    for stage in stages:
        running = [stage.encode(chunk) for chunk in running]
        waterfall.append((stage.name, sum(len(c) for c in running)))
    import repro

    compressed = len(repro.compress(raw, codec))
    return StageBreakdown(
        codec=chosen.name,
        original=len(raw),
        waterfall=tuple(waterfall),
        compressed=compressed,
    )


def recommend(data: np.ndarray) -> tuple[str, str]:
    """Suggest a codec and explain why, from measured statistics."""
    from repro.analysis.diagnostics import repeat_profile, smoothness

    data = np.asarray(data)
    if data.dtype == np.float32:
        speed, ratio = "spspeed", "spratio"
    elif data.dtype == np.float64:
        speed, ratio = "dpspeed", "dpratio"
    else:
        raise UnsupportedDtypeError(f"no codec family for dtype {data.dtype}")
    repeats = repeat_profile(data)
    smooth = smoothness(data)
    if data.dtype == np.float64 and repeats.favors_fcm:
        return ratio, (
            f"{repeats.far_repeat_fraction:.0%} of values repeat beyond the "
            "LZ window — DPratio's FCM stage is built for exactly this."
        )
    if smooth.is_smooth:
        return ratio, (
            f"{smooth.small_diff_fraction:.0%} of differences are small — "
            "the ratio-mode pipeline will compress well."
        )
    return speed, (
        "differences are large (mean "
        f"{smooth.mean_diff_bits:.1f} significant bits): extra ratio-mode "
        "stages would buy little, take the fast path."
    )
