"""Per-stage size waterfalls and codec recommendation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.codecs import Codec, get_codec
from repro.core.compressor import compress_bytes
from repro.core.trace import TraceCollector
from repro.errors import UnsupportedDtypeError
from repro.metrics.timing import stage_totals


@dataclass(frozen=True)
class StageBreakdown:
    """How many bytes each stage of a codec leaves behind on given data."""

    codec: str
    original: int
    #: (stage name, bytes after the stage), in pipeline order; the global
    #: stage (FCM) appears first when the codec has one.
    waterfall: tuple[tuple[str, int], ...]
    compressed: int
    #: chunk counts from the traced engine run behind the waterfall.
    chunks: int = 0
    raw_chunks: int = 0

    @property
    def ratio(self) -> float:
        return self.original / self.compressed if self.compressed else 0.0

    def render(self) -> str:
        lines = [f"{self.codec}: {self.original} B original"]
        for name, size in self.waterfall:
            pct = 100.0 * size / self.original if self.original else 0.0
            lines.append(f"  after {name:<8} {size:>10} B  ({pct:6.1f}%)")
        lines.append(f"  container   {self.compressed:>10} B  "
                     f"(ratio {self.ratio:.3f})")
        if self.chunks:
            lines.append(f"  chunks      {self.chunks:>10}   "
                         f"({self.raw_chunks} stored raw)")
        return "\n".join(lines)


def explain(data: np.ndarray | bytes, codec: str) -> StageBreakdown:
    """Compress once with per-chunk tracing and report the size waterfall.

    The waterfall shows where a codec earns (or wastes) its bytes: e.g.
    DPratio's FCM stage *doubles* the data before the later stages win it
    back — exactly the behaviour paper §3.2 describes.  The numbers come
    from one real traced engine run (not a re-simulation): the global
    stage's output size, then each chunked stage's output summed over the
    per-chunk :class:`~repro.core.trace.ChunkTrace` records.
    """
    chosen: Codec = get_codec(codec)
    if isinstance(data, np.ndarray):
        raw = np.ascontiguousarray(data).tobytes()
    else:
        raw = bytes(data)
    collector = TraceCollector()
    blob = compress_bytes(raw, chosen, trace=collector)
    waterfall: list[tuple[str, int]] = []
    if collector.global_stage is not None:
        event = collector.global_stage
        waterfall.append((event.stage, event.out_bytes))
    for totals in stage_totals(collector.chunks, collector.batches):
        waterfall.append((totals.stage, totals.out_bytes))
    return StageBreakdown(
        codec=chosen.name,
        original=len(raw),
        waterfall=tuple(waterfall),
        compressed=len(blob),
        chunks=collector.n_chunks,
        raw_chunks=collector.raw_chunks,
    )


def recommend(data: np.ndarray, *, probe: bool = False) -> tuple[str, str]:
    """Suggest a codec and explain why, from measured statistics.

    With ``probe=True`` the recommendation is additionally backed by one
    traced compression of the suggested codec, and the reason cites the
    run's real per-chunk numbers (chunk count, raw fallbacks, ratio).
    """
    from repro.analysis.diagnostics import repeat_profile, smoothness

    data = np.asarray(data)
    if data.dtype == np.float32:
        speed, ratio = "spspeed", "spratio"
    elif data.dtype == np.float64:
        speed, ratio = "dpspeed", "dpratio"
    else:
        raise UnsupportedDtypeError(f"no codec family for dtype {data.dtype}")
    repeats = repeat_profile(data)
    smooth = smoothness(data)
    if data.dtype == np.float64 and repeats.favors_fcm:
        choice, reason = ratio, (
            f"{repeats.far_repeat_fraction:.0%} of values repeat beyond the "
            "LZ window — DPratio's FCM stage is built for exactly this."
        )
    elif smooth.is_smooth:
        choice, reason = ratio, (
            f"{smooth.small_diff_fraction:.0%} of differences are small — "
            "the ratio-mode pipeline will compress well."
        )
    else:
        choice, reason = speed, (
            "differences are large (mean "
            f"{smooth.mean_diff_bits:.1f} significant bits): extra ratio-mode "
            "stages would buy little, take the fast path."
        )
    if probe:
        breakdown = explain(data, choice)
        reason += (
            f" A traced probe run confirms it: {breakdown.chunks} chunks, "
            f"{breakdown.raw_chunks} stored raw, ratio {breakdown.ratio:.2f}."
        )
    return choice, reason
