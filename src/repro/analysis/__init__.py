"""Compressibility diagnostics: why (and how well) data will compress.

The paper's algorithms exploit specific bit-level statistics — clustered
exponents, leading-zero runs after differencing, repeated values, random
low mantissas.  This subpackage measures those statistics directly and
explains a codec's behaviour stage by stage:

* :func:`repro.analysis.diagnostics.smoothness` — difference-magnitude
  statistics (DIFFMS's food);
* :func:`repro.analysis.diagnostics.leading_zero_profile` — the per-value
  leading-zero histogram RAZE's adaptive split is computed from;
* :func:`repro.analysis.diagnostics.byte_plane_entropy` — per-byte-position
  entropy (what BIT+RZE and byte shuffles can harvest);
* :func:`repro.analysis.diagnostics.repeat_profile` — exact-repeat and
  repeat-distance statistics (FCM/FPC's food);
* :func:`repro.analysis.explain.explain` — per-stage size waterfall for a
  codec on given data;
* :func:`repro.analysis.explain.recommend` — codec recommendation from the
  measured statistics.
"""

from repro.analysis.diagnostics import (
    byte_plane_entropy,
    leading_zero_profile,
    repeat_profile,
    smoothness,
)
from repro.analysis.explain import StageBreakdown, explain, recommend

__all__ = [
    "StageBreakdown",
    "byte_plane_entropy",
    "explain",
    "leading_zero_profile",
    "recommend",
    "repeat_profile",
    "smoothness",
]
