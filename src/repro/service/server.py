"""The asyncio compression daemon behind ``fprz serve``.

Architecture — the same skeleton any inference-serving stack needs:

* **Framing**: each connection is a stream of FPRW frames
  (:mod:`repro.service.protocol`).  Headers are validated before the
  body is read, so a hostile declared length fails with a typed
  :class:`~repro.errors.ProtocolError` and never sizes an allocation.
* **Admission control**: one bounded job queue for the whole server.
  Past the high-water mark a request is rejected immediately with a
  BUSY frame — explicit backpressure instead of unbounded buffering.
  Each connection additionally has a bytes-in-flight cap, so one
  client cannot monopolise admission with huge queued payloads.
* **Worker-pool offload**: codec work runs in a thread pool off the
  event loop; inside each job, chunk-level parallelism uses the
  engine's own executors (:mod:`repro.core.executors` — a shared
  :class:`~repro.core.executors.PooledThreadedExecutor` when
  ``codec_workers > 1``), so the serving layer and the library run the
  exact same compression code.
* **Deadlines**: every job is wrapped in ``asyncio.wait_for``.  Past
  the deadline the response is a typed DEADLINE error and the awaiting
  task is cancelled; the connection itself stays usable.  (The worker
  thread finishes its current chunk work in the background and its
  result is discarded — cancellation is at the response boundary,
  bounded by the pool size.)
* **Graceful drain**: ``stop(drain=True)`` (installed on SIGTERM /
  SIGINT by :meth:`CompressionServer.run`) stops accepting, answers new
  requests with a SHUTTING-DOWN error, waits up to ``drain_timeout``
  for in-flight jobs, then closes the remaining connections.
* **Metrics**: every decision increments the
  :class:`~repro.service.metrics.MetricsRegistry` served by the STATS
  opcode and ``fprz stats``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.api import compress as api_compress
from repro.bitpack import backend as kernel_backend
from repro.core import codec_by_id
from repro.core import container as fmt
from repro.core.codecs import codec_for, get_codec
from repro.core.compressor import decompress_bytes
from repro.core.executors import (
    Executor,
    PooledThreadedExecutor,
    SharedMemoryProcessExecutor,
    normalize_policy,
)
from repro.core.incremental import StreamingCompressor, StreamingDecompressor
from repro.errors import (
    FormatError,
    ProtocolError,
    ReproError,
    ServiceError,
    traceback_summary,
)
from repro.service import protocol as proto
from repro.service.metrics import (
    DEPTH_BUCKETS,
    LATENCY_BUCKETS,
    RATIO_BUCKETS,
    SIZE_BUCKETS,
    MetricsRegistry,
)

_DTYPE_BY_CODE = {fmt.DTYPE_F32: np.dtype(np.float32),
                  fmt.DTYPE_F64: np.dtype(np.float64)}


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`CompressionServer`."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it back from ``server.port``).
    port: int = proto.DEFAULT_PORT
    #: Per-frame body limit, enforced on declared lengths in both
    #: directions before anything is allocated.
    max_frame: int = proto.DEFAULT_MAX_FRAME
    #: Admission high-water mark: jobs admitted but not yet finished.
    #: At the mark, new work is rejected with BUSY.
    queue_high_water: int = 32
    #: Per-connection cap on admitted-but-unfinished request bytes.
    conn_bytes_in_flight: int = 256 * 1024 * 1024
    #: Per-stream byte window for STREAM-DATA flow control.  The server
    #: never buffers more than this many unprocessed payload bytes per
    #: stream — credit is granted back to the sender only as buffered
    #: bytes are consumed — so memory for a streamed transfer is bounded
    #: by the window no matter how large the declared payload.
    stream_window: int = 4 * 1024 * 1024
    #: Per-tenant admission quota in payload bytes per second (token
    #: bucket, refilled continuously).  0 disables quota enforcement.
    quota_rate: float = 0.0
    #: Token-bucket burst capacity in bytes; 0 defaults to one second of
    #: ``quota_rate``.
    quota_burst: int = 0
    #: Per-request deadline in seconds.
    request_timeout: float = 30.0
    #: Seconds ``stop(drain=True)`` waits for in-flight jobs.
    drain_timeout: float = 10.0
    #: Concurrent codec jobs (thread-pool size).
    job_threads: int = 4
    #: Chunk-level workers *inside* each codec job; >1 routes chunk work
    #: through a shared :class:`~repro.core.executors.PooledThreadedExecutor`.
    codec_workers: int = 1
    #: Executor policy for the chunk-level workers: ``"threaded"`` (the
    #: pooled worklist) or ``"process"`` (one shared GIL-free
    #: :class:`~repro.core.executors.SharedMemoryProcessExecutor`).
    codec_policy: str = "threaded"
    #: Backoff hint carried in BUSY responses (milliseconds).  Clients
    #: with a :class:`~repro.service.resilience.RetryPolicy` treat it as
    #: a lower bound on their next delay; 0 sends the hint-less
    #: protocol-v1 empty body.
    busy_retry_ms: int = 50
    #: Artificial per-job delay in seconds.  A test/experiment knob for
    #: exercising deadlines, backpressure, and drain deterministically;
    #: leave at 0 in production.
    job_delay: float = 0.0
    #: Kernel backend pinned at startup (``fprz serve --backend``).
    #: ``None`` keeps the process default (explicit pin > env var >
    #: auto).  The *resolved* name is reported in STATS and as the
    #: ``kernel_backend_info`` gauge either way.
    kernel_backend: str | None = None


class _TokenBucket:
    """Per-tenant byte-rate admission quota (continuously refilled)."""

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = time.monotonic()

    def admit(self, n_bytes: int) -> tuple[bool, int]:
        """Try to spend ``n_bytes``; returns ``(admitted, retry_ms)``.

        ``retry_ms`` is the earliest time (in milliseconds) at which the
        deficit will have refilled — the hint carried in the QUOTA error.
        """
        now = time.monotonic()
        self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now
        if n_bytes <= self.tokens:
            self.tokens -= n_bytes
            return True, 0
        deficit = min(n_bytes, self.burst) - self.tokens
        retry_ms = int(deficit * 1000.0 / self.rate) + 1
        return False, retry_ms


class _StreamJob:
    """Server-side state of one in-flight stream (the ledger attachment)."""

    __slots__ = (
        "engine", "opname", "codec_label", "queue", "start", "bytes_in",
    )

    def __init__(self, engine, opname: str, codec_label: str) -> None:
        self.engine = engine
        self.opname = opname
        self.codec_label = codec_label
        #: Frames handed from the read loop to the stream task:
        #: ``("data", payload)`` / ``("end", b"")`` / ``("abort", b"")``.
        self.queue: asyncio.Queue = asyncio.Queue()
        self.start = time.perf_counter()
        self.bytes_in = 0


@dataclass(eq=False)
class _Connection:
    """Per-connection state (identity-hashed: every connection is unique)."""

    writer: asyncio.StreamWriter
    ledger: proto.StreamLedger
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    bytes_in_flight: int = 0
    tasks: set = field(default_factory=set)
    #: Quota accounting identity, set by PING negotiation.
    tenant: str = "default"
    #: Live stream jobs by correlation id.
    streams: dict = field(default_factory=dict)
    #: Correlation ids of streams aborted server-side whose in-flight
    #: frames are tolerated (dropped) until their STREAM-END arrives.
    dead_streams: set = field(default_factory=set)


class CompressionServer:
    """A framed compress/decompress/inspect service over TCP."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry or MetricsRegistry()
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._chunk_executor: Executor | None = None
        self._conns: set[_Connection] = set()
        self._jobs: set[asyncio.Task] = set()
        self._queue_depth = 0
        #: Per-tenant admission buckets (created lazily; quota_rate > 0).
        self._buckets: dict[str, _TokenBucket] = {}
        #: Unprocessed STREAM-DATA bytes held across all streams; its
        #: high-water mark is the ``stream_buffered_watermark`` gauge the
        #: bounded-memory tests assert against.
        self._stream_buffered = 0
        self._draining = False
        self._stopped: asyncio.Event | None = None
        self._started_at = 0.0
        self._kernel_backend: str | None = None
        #: Pin active before we pinned (sentinel False = we never pinned).
        self._prev_backend_pin: str | None | bool = False

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start serving connections."""
        cfg = self.config
        self._stopped = asyncio.Event()
        try:
            policy = normalize_policy(cfg.codec_policy, ("threaded", "process"))
        except ValueError as exc:
            raise ServiceError(str(exc)) from exc
        if cfg.kernel_backend is not None:
            try:
                self._prev_backend_pin = kernel_backend.set_backend(
                    cfg.kernel_backend
                )
            except ReproError as exc:
                raise ServiceError(str(exc)) from exc
        active = kernel_backend.active_backend()
        self._kernel_backend = active.name
        self.registry.gauge("kernel_backend_info", backend=active.name).set(1)
        self._pool = ThreadPoolExecutor(
            max_workers=cfg.job_threads, thread_name_prefix="repro-svc"
        )
        if policy == "process":
            # One shared GIL-free pool for every codec job; its worker
            # processes persist across requests like the pooled threads.
            self._chunk_executor = SharedMemoryProcessExecutor(
                max(cfg.codec_workers, 1)
            )
        elif cfg.codec_workers > 1:
            self._chunk_executor = PooledThreadedExecutor(cfg.codec_workers)
        self._server = await asyncio.start_server(
            self._handle_conn, cfg.host, cfg.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def stop(self, drain: bool = True) -> None:
        """Stop serving; with ``drain``, let in-flight jobs finish first."""
        if self._stopped is None or self._stopped.is_set():
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._jobs:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*tuple(self._jobs), return_exceptions=True),
                    self.config.drain_timeout,
                )
        for task in tuple(self._jobs):
            task.cancel()
        for conn in tuple(self._conns):
            conn.writer.close()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if isinstance(
            self._chunk_executor,
            (PooledThreadedExecutor, SharedMemoryProcessExecutor),
        ):
            self._chunk_executor.close()
        if self._prev_backend_pin is not False:
            # Undo the startup backend pin (it is process-wide state and
            # embedded ServerThread uses share the process with tests).
            kernel_backend.set_backend(self._prev_backend_pin)
            self._prev_backend_pin = False
        self._stopped.set()

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, "server not started"
        await self._stopped.wait()

    async def run(
        self, *, install_signals: bool = True, on_started=None
    ) -> None:
        """Start, serve until SIGTERM/SIGINT (graceful drain), then exit."""
        await self.start()
        if on_started is not None:
            on_started()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(
                        sig, lambda: asyncio.ensure_future(self.stop())
                    )
        await self.wait_stopped()

    # -- connection handling ------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        cfg = self.config
        conn = _Connection(
            writer=writer,
            ledger=proto.StreamLedger(window=cfg.stream_window),
        )
        self._conns.add(conn)
        self.registry.gauge("connections").inc()
        self.registry.counter("connections_total").inc()
        try:
            while True:
                try:
                    header = await reader.readexactly(proto.HEADER_SIZE)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                try:
                    opcode, request_id, body_len = proto.parse_header(
                        header, max_frame=cfg.max_frame
                    )
                    if opcode not in proto.REQUEST_OPCODES:
                        exc = ServiceError(
                            f"opcode 0x{opcode:02x} is a response opcode"
                        )
                        raise self._as_protocol_error(exc, request_id)
                except ReproError as exc:
                    # A frame we cannot trust leaves the stream unsynced:
                    # answer with a typed error, then drop the connection.
                    self.registry.counter("protocol_errors_total").inc()
                    await self._send(
                        conn, proto.OP_ERROR, getattr(exc, "request_id", 0),
                        proto.encode_error_body(proto.ERR_PROTOCOL, str(exc)),
                    )
                    break
                try:
                    body = await reader.readexactly(body_len)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if await self._dispatch(conn, opcode, request_id, body) is False:
                    # A stream-level protocol violation leaves the
                    # per-connection stream state untrustworthy: the
                    # typed error has been sent; drop the connection.
                    break
        finally:
            for job in tuple(conn.streams.values()):
                job.queue.put_nowait(("abort", b""))
            self._conns.discard(conn)
            self.registry.gauge("connections").dec()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    @staticmethod
    def _as_protocol_error(exc: Exception, request_id: int):
        from repro.errors import ProtocolError

        wrapped = ProtocolError(str(exc))
        wrapped.request_id = request_id
        return wrapped

    async def _send(
        self, conn: _Connection, opcode: int, request_id: int, body: bytes = b""
    ) -> None:
        try:
            async with conn.write_lock:
                conn.writer.write(proto.encode_frame(opcode, request_id, body))
                await conn.writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # client went away; the job result is simply discarded

    async def _dispatch(
        self, conn: _Connection, opcode: int, request_id: int, body: bytes
    ) -> bool | None:
        """Route one request frame.  Returns ``False`` when the
        connection must be closed (stream-level protocol violation)."""
        cfg = self.config
        opname = proto.REQUEST_OPCODES[opcode]
        self.registry.counter("bytes_in_total", opcode=opname).inc(len(body))
        if opcode == proto.OP_PING:
            reply = self._negotiate(conn, body)
            await self._send(conn, proto.OP_RESULT, request_id, reply)
            self._count(opname, "-", "ok")
            return None
        if opcode == proto.OP_STATS:
            payload = json.dumps(self._stats()).encode("utf-8")
            await self._send(conn, proto.OP_RESULT, request_id, payload)
            self.registry.counter("bytes_out_total", opcode=opname).inc(len(payload))
            self._count(opname, "-", "ok")
            return None
        if opcode in (proto.OP_STREAM_DATA, proto.OP_STREAM_END):
            return await self._dispatch_stream_frame(
                conn, opcode, request_id, body
            )
        # Admission-controlled work (unary codec jobs and STREAM-BEGIN).
        if self._draining:
            await self._send(
                conn, proto.OP_ERROR, request_id,
                proto.encode_error_body(
                    proto.ERR_SHUTTING_DOWN, "server is draining"
                ),
            )
            self._count(opname, "-", "shutdown")
            return None
        if opcode == proto.OP_STREAM_BEGIN:
            return await self._dispatch_stream_begin(conn, request_id, body)
        busy_hint = proto.encode_busy_body(cfg.busy_retry_ms or None)
        if self._queue_depth >= cfg.queue_high_water:
            self.registry.counter("busy_rejections_total", reason="queue").inc()
            await self._send(conn, proto.OP_BUSY, request_id, busy_hint)
            self._count(opname, "-", "busy")
            return None
        if conn.bytes_in_flight + len(body) > cfg.conn_bytes_in_flight:
            self.registry.counter("busy_rejections_total", reason="conn-bytes").inc()
            await self._send(conn, proto.OP_BUSY, request_id, busy_hint)
            self._count(opname, "-", "busy")
            return None
        if not await self._admit_quota(conn, opname, request_id, len(body)):
            return None
        self.registry.histogram(
            "pipeline_depth", buckets=DEPTH_BUCKETS
        ).observe(len(conn.tasks) + 1)
        self._queue_depth += 1
        conn.bytes_in_flight += len(body)
        self.registry.gauge("queue_depth").set(self._queue_depth)
        self.registry.gauge("bytes_in_flight").inc(len(body))
        task = asyncio.ensure_future(
            self._run_job(conn, opcode, request_id, body)
        )
        self._jobs.add(task)
        conn.tasks.add(task)
        task.add_done_callback(self._jobs.discard)
        task.add_done_callback(conn.tasks.discard)
        return None

    # -- feature negotiation and quotas --------------------------------

    def _negotiate(self, conn: _Connection, body: bytes) -> bytes:
        """PING body in, PING reply body out (see ``decode_ping_body``).

        An empty request body is a protocol-v1 peer and gets the v1
        empty reply, byte for byte.  A malformed body fails *open* to the
        same v1 semantics — negotiation is an optimisation, never a
        reason to reject an old client.
        """
        if not body:
            return b""
        try:
            doc = proto.decode_ping_body(body)
        except ProtocolError:
            self.registry.counter("ping_negotiation_failures_total").inc()
            return b""
        tenant = doc.get("tenant")
        if isinstance(tenant, str) and tenant:
            conn.tenant = tenant
        if not doc.get("features"):
            return b""
        return proto.encode_ping_body(
            proto.FEATURES, stream_window=self.config.stream_window
        )

    async def _admit_quota(
        self, conn: _Connection, opname: str, request_id: int, n_bytes: int
    ) -> bool:
        """Charge ``n_bytes`` against the connection's tenant bucket.

        On rejection the typed QUOTA error (with its refill hint) has
        already been sent when this returns ``False``.
        """
        cfg = self.config
        if cfg.quota_rate <= 0:
            return True
        bucket = self._buckets.get(conn.tenant)
        if bucket is None:
            burst = cfg.quota_burst or max(int(cfg.quota_rate), 1)
            bucket = self._buckets[conn.tenant] = _TokenBucket(
                cfg.quota_rate, burst
            )
        admitted, retry_ms = bucket.admit(n_bytes)
        if admitted:
            self.registry.counter(
                "quota_admitted_total", tenant=conn.tenant
            ).inc()
            self.registry.counter(
                "quota_admitted_bytes_total", tenant=conn.tenant
            ).inc(n_bytes)
            return True
        self.registry.counter(
            "quota_rejected_total", tenant=conn.tenant
        ).inc()
        await self._send(
            conn, proto.OP_ERROR, request_id,
            proto.encode_error_body(
                proto.ERR_QUOTA,
                f"tenant {conn.tenant!r} exceeded its "
                f"{cfg.quota_rate:g} byte/s quota; retry_after_ms={retry_ms}",
            ),
        )
        self._count(opname, "-", "quota")
        return False

    # -- streamed transfers --------------------------------------------

    def _stream_engine(self, begin: proto.StreamBegin):
        """Build the incremental engine for a STREAM-BEGIN (pool-thread
        safe, raises typed errors)."""
        if begin.mode == proto.STREAM_DECOMPRESS:
            return StreamingDecompressor(total_len=begin.total_len), "-"
        if begin.codec:
            codec = get_codec(begin.codec)
        elif begin.dtype_code in _DTYPE_BY_CODE:
            codec = codec_for(_DTYPE_BY_CODE[begin.dtype_code], "ratio")
        else:
            raise FormatError(
                "streamed compression of raw bytes needs an explicit codec "
                "(no dtype to infer one from)"
            )
        engine = StreamingCompressor(
            codec,
            total_len=begin.total_len,
            dtype_code=begin.dtype_code,
            shape=begin.shape,
        )
        return engine, engine.codec.name

    async def _dispatch_stream_begin(
        self, conn: _Connection, request_id: int, body: bytes
    ) -> bool | None:
        cfg = self.config
        # A fresh BEGIN supersedes any tombstone left by an earlier
        # aborted stream that reused this correlation id.
        conn.dead_streams.discard(request_id)
        try:
            state = conn.ledger.on_begin(request_id, body)
        except ProtocolError as exc:
            self.registry.counter("protocol_errors_total").inc()
            await self._send(
                conn, proto.OP_ERROR, request_id,
                proto.encode_error_body(proto.ERR_PROTOCOL, str(exc)),
            )
            self._count("stream-begin", "-", "protocol")
            return False
        begin = state.begin
        opname = (
            "stream-compress" if begin.mode == proto.STREAM_COMPRESS
            else "stream-decompress"
        )
        busy_hint = proto.encode_busy_body(cfg.busy_retry_ms or None)
        if self._queue_depth >= cfg.queue_high_water:
            conn.ledger.close(request_id)
            conn.dead_streams.add(request_id)
            self.registry.counter("busy_rejections_total", reason="queue").inc()
            await self._send(conn, proto.OP_BUSY, request_id, busy_hint)
            self._count(opname, "-", "busy")
            return None
        if not await self._admit_quota(
            conn, opname, request_id, begin.total_len
        ):
            conn.ledger.close(request_id)
            conn.dead_streams.add(request_id)
            return None
        try:
            engine, codec_label = self._stream_engine(begin)
        except ReproError as exc:
            conn.ledger.close(request_id)
            conn.dead_streams.add(request_id)
            await self._send(
                conn, proto.OP_ERROR, request_id,
                proto.encode_error_body(proto.error_code_for(exc), str(exc)),
            )
            self._count(opname, "-", "error")
            return None
        job = _StreamJob(engine, opname, codec_label)
        state.attachment = job
        conn.streams[request_id] = job
        self.registry.histogram(
            "pipeline_depth", buckets=DEPTH_BUCKETS
        ).observe(len(conn.tasks) + 1)
        self._queue_depth += 1
        self.registry.gauge("queue_depth").set(self._queue_depth)
        self.registry.gauge("streams_in_flight").inc()
        self.registry.counter("streams_total", opcode=opname).inc()
        task = asyncio.ensure_future(self._run_stream(conn, request_id, job))
        self._jobs.add(task)
        conn.tasks.add(task)
        task.add_done_callback(self._jobs.discard)
        task.add_done_callback(conn.tasks.discard)
        # The opening credit grant: the ledger has already reserved it,
        # so the client may send this many DATA bytes immediately.
        await self._send(
            conn, proto.OP_STREAM_ACK, request_id,
            proto.encode_stream_ack(state.credit),
        )
        return None

    async def _dispatch_stream_frame(
        self, conn: _Connection, opcode: int, request_id: int, body: bytes
    ) -> bool | None:
        """Route a STREAM-DATA / STREAM-END frame through the ledger."""
        if request_id in conn.dead_streams:
            # The stream was aborted server-side (or rejected at BEGIN)
            # after the client may already have frames in flight within
            # its granted credit: tolerate and drop them.  END retires
            # the tombstone.
            if opcode == proto.OP_STREAM_END:
                conn.dead_streams.discard(request_id)
            return None
        try:
            if opcode == proto.OP_STREAM_DATA:
                state = conn.ledger.on_data(request_id, len(body))
            else:
                state = conn.ledger.on_end(request_id)
        except ProtocolError as exc:
            self.registry.counter("protocol_errors_total").inc()
            await self._send(
                conn, proto.OP_ERROR, request_id,
                proto.encode_error_body(proto.ERR_PROTOCOL, str(exc)),
            )
            self._count(proto.REQUEST_OPCODES[opcode], "-", "protocol")
            return False
        job: _StreamJob = state.attachment
        if opcode == proto.OP_STREAM_DATA:
            job.bytes_in += len(body)
            self._track_stream_buffered(len(body))
            if state.credit == 0:
                self.registry.counter("window_stalls_total").inc()
            job.queue.put_nowait(("data", body))
        else:
            job.queue.put_nowait(("end", b""))
        return None

    def _track_stream_buffered(self, delta: int) -> None:
        self._stream_buffered += delta
        gauge = self.registry.gauge("stream_buffered_bytes")
        gauge.set(self._stream_buffered)
        watermark = self.registry.gauge("stream_buffered_watermark")
        if self._stream_buffered > watermark.value:
            watermark.set(self._stream_buffered)

    async def _run_stream(
        self, conn: _Connection, request_id: int, job: _StreamJob
    ) -> None:
        """The per-stream task: consume queued frames, run the
        incremental engine in the worker pool, emit RESULT/ACK/DONE."""
        cfg = self.config
        loop = asyncio.get_running_loop()
        outcome = "ok"
        try:
            while True:
                kind, payload = await job.queue.get()
                if kind == "abort":
                    outcome = "cancelled"
                    return
                if kind == "data":
                    results = await asyncio.wait_for(
                        loop.run_in_executor(
                            self._pool, job.engine.feed, payload
                        ),
                        cfg.request_timeout,
                    )
                    self._track_stream_buffered(-len(payload))
                    grant = conn.ledger.consume(request_id, len(payload))
                    await self._send_stream_results(conn, request_id, job, results)
                    if grant:
                        await self._send(
                            conn, proto.OP_STREAM_ACK, request_id,
                            proto.encode_stream_ack(grant),
                        )
                    continue
                # STREAM-END: flush / finish, then the trailer.
                engine = job.engine
                if isinstance(engine, StreamingCompressor):
                    results = await asyncio.wait_for(
                        loop.run_in_executor(self._pool, engine.flush),
                        cfg.request_timeout,
                    )
                    await self._send_stream_results(conn, request_id, job, results)
                    trailer = proto.encode_stream_trailer(
                        engine.dtype_code, engine.shape, engine.prefix()
                    )
                else:
                    dtype_code, shape = engine.finish()
                    trailer = proto.encode_stream_trailer(dtype_code, shape)
                await self._send(
                    conn, proto.OP_STREAM_DONE, request_id, trailer
                )
                self.registry.counter(
                    "bytes_out_total", opcode=job.opname
                ).inc(len(trailer))
                return
        except asyncio.TimeoutError:
            outcome = "deadline"
            await self._abort_stream(
                conn, request_id, proto.ERR_DEADLINE,
                f"stream chunk exceeded the {cfg.request_timeout:g}s deadline",
            )
        except ReproError as exc:
            outcome = "error"
            await self._abort_stream(
                conn, request_id, proto.error_code_for(exc), str(exc)
            )
        except asyncio.CancelledError:
            outcome = "cancelled"
            raise
        except Exception as exc:  # unexpected: typed INTERNAL, never a hang
            outcome = "internal"
            await self._abort_stream(
                conn, request_id, proto.ERR_INTERNAL, traceback_summary(exc)
            )
        finally:
            if request_id in conn.ledger:
                # Return any still-buffered bytes to the global gauge
                # before forgetting the stream.
                state = conn.ledger.get(request_id)
                self._track_stream_buffered(-state.buffered)
                conn.ledger.close(request_id)
            conn.streams.pop(request_id, None)
            self._queue_depth -= 1
            self.registry.gauge("queue_depth").set(self._queue_depth)
            self.registry.gauge("streams_in_flight").dec()
            self._count(job.opname, job.codec_label, outcome)
            self.registry.histogram(
                "request_seconds", buckets=LATENCY_BUCKETS, opcode=job.opname
            ).observe(time.perf_counter() - job.start)
            self.registry.histogram(
                "request_bytes", buckets=SIZE_BUCKETS, opcode=job.opname
            ).observe(job.bytes_in)

    async def _send_stream_results(
        self, conn: _Connection, request_id: int, job: _StreamJob, results
    ) -> None:
        for index, chunk in results:
            body = proto.encode_stream_result(index, chunk)
            await self._send(conn, proto.OP_STREAM_RESULT, request_id, body)
            self.registry.counter(
                "bytes_out_total", opcode=job.opname
            ).inc(len(body))

    async def _abort_stream(
        self, conn: _Connection, request_id: int, code: int, message: str
    ) -> None:
        """Fail a stream mid-flight: typed error out, tombstone so the
        client's already-in-flight frames are tolerated."""
        conn.dead_streams.add(request_id)
        await self._send(
            conn, proto.OP_ERROR, request_id,
            proto.encode_error_body(code, message),
        )

    # -- job execution ------------------------------------------------

    async def _run_job(
        self, conn: _Connection, opcode: int, request_id: int, body: bytes
    ) -> None:
        cfg = self.config
        opname = proto.REQUEST_OPCODES[opcode]
        work = {
            proto.OP_COMPRESS: self._work_compress,
            proto.OP_DECOMPRESS: self._work_decompress,
            proto.OP_INSPECT: self._work_inspect,
        }[opcode]
        start = time.perf_counter()
        outcome, codec_label = "ok", "-"
        loop = asyncio.get_running_loop()
        try:
            try:
                result_body, codec_label = await asyncio.wait_for(
                    loop.run_in_executor(self._pool, work, body),
                    cfg.request_timeout,
                )
            except asyncio.TimeoutError:
                outcome = "deadline"
                await self._send(
                    conn, proto.OP_ERROR, request_id,
                    proto.encode_error_body(
                        proto.ERR_DEADLINE,
                        f"request exceeded the {cfg.request_timeout:g}s deadline",
                    ),
                )
                return
            except ReproError as exc:
                outcome = "error"
                await self._send(
                    conn, proto.OP_ERROR, request_id,
                    proto.encode_error_body(proto.error_code_for(exc), str(exc)),
                )
                return
            except asyncio.CancelledError:
                outcome = "cancelled"
                raise
            except Exception as exc:  # unexpected: typed INTERNAL, never a hang
                outcome = "internal"
                await self._send(
                    conn, proto.OP_ERROR, request_id,
                    proto.encode_error_body(
                        proto.ERR_INTERNAL, traceback_summary(exc)
                    ),
                )
                return
            if len(result_body) > cfg.max_frame:
                outcome = "error"
                await self._send(
                    conn, proto.OP_ERROR, request_id,
                    proto.encode_error_body(
                        proto.ERR_BOUNDS,
                        f"result of {len(result_body)} bytes exceeds the "
                        f"{cfg.max_frame}-byte frame limit",
                    ),
                )
                return
            await self._send(conn, proto.OP_RESULT, request_id, result_body)
            self.registry.counter("bytes_out_total", opcode=opname).inc(
                len(result_body)
            )
        finally:
            self._queue_depth -= 1
            conn.bytes_in_flight -= len(body)
            self.registry.gauge("queue_depth").set(self._queue_depth)
            self.registry.gauge("bytes_in_flight").dec(len(body))
            self._count(opname, codec_label, outcome)
            self.registry.histogram(
                "request_seconds", buckets=LATENCY_BUCKETS, opcode=opname
            ).observe(time.perf_counter() - start)
            self.registry.histogram(
                "request_bytes", buckets=SIZE_BUCKETS, opcode=opname
            ).observe(len(body))

    def _count(self, opname: str, codec: str, outcome: str) -> None:
        self.registry.counter(
            "requests_total", opcode=opname, codec=codec, outcome=outcome
        ).inc()

    # Work functions run inside pool threads; anything they raise is
    # translated to a typed error frame by ``_run_job``.

    def _work_compress(self, body: bytes) -> tuple[bytes, str]:
        if self.config.job_delay:
            time.sleep(self.config.job_delay)
        codec, dtype_code, shape, payload = proto.decode_compress_body(body)
        if dtype_code == fmt.DTYPE_BYTES:
            data: np.ndarray | bytes = payload
        else:
            array = np.frombuffer(payload, dtype=_DTYPE_BY_CODE[dtype_code])
            data = array.reshape(shape) if shape is not None else array
        blob = api_compress(
            data, codec,
            workers=self.config.codec_workers, executor=self._chunk_executor,
        )
        codec_name = codec_by_id(fmt.inspect_container(blob).codec_id).name
        if payload:
            self.registry.histogram(
                "compression_ratio", buckets=RATIO_BUCKETS
            ).observe(len(payload) / max(len(blob), 1))
        return blob, codec_name

    def _work_decompress(self, body: bytes) -> tuple[bytes, str]:
        if self.config.job_delay:
            time.sleep(self.config.job_delay)
        data, info = decompress_bytes(
            bytes(body),
            workers=self.config.codec_workers, executor=self._chunk_executor,
        )
        shape = tuple(info.shape) if info.shape is not None else None
        return (
            proto.encode_array_body(
                data, dtype_code=info.dtype_code, shape=shape
            ),
            codec_by_id(info.codec_id).name,
        )

    def _work_inspect(self, body: bytes) -> tuple[bytes, str]:
        info = fmt.inspect_container(bytes(body))
        codec_name = codec_by_id(info.codec_id).name
        payload = json.dumps({
            "version": info.version,
            "codec": codec_name,
            "dtype_code": info.dtype_code,
            "original_len": info.original_len,
            "compressed_len": info.total_len,
            "ratio": info.ratio,
            "chunk_size": info.chunk_size,
            "n_chunks": info.n_chunks,
            "raw_fallback": info.raw_fallback,
            "shape": list(info.shape) if info.shape is not None else None,
            "checksum": info.checksum is not None,
            "chunk_crcs": info.chunk_crcs is not None,
        }).encode("utf-8")
        return payload, codec_name

    def _stats(self) -> dict:
        cfg = self.config
        return {
            "server": {
                "uptime_seconds": time.monotonic() - self._started_at,
                "draining": self._draining,
                "queue_depth": self._queue_depth,
                "queue_high_water": cfg.queue_high_water,
                "max_frame": cfg.max_frame,
                "stream_window": cfg.stream_window,
                "open_streams": sum(len(c.streams) for c in self._conns),
                "quota_rate": cfg.quota_rate,
                "quota_burst": cfg.quota_burst,
                "features": list(proto.FEATURES),
                "request_timeout": cfg.request_timeout,
                "job_threads": cfg.job_threads,
                "codec_workers": cfg.codec_workers,
                "codec_policy": cfg.codec_policy,
                "kernel_backend": self._kernel_backend,
            },
            "metrics": self.registry.snapshot(),
        }


class ServerThread:
    """Run a :class:`CompressionServer` on a background thread.

    The harness used by the tests, the benchmark trajectory, and any
    caller that wants a live server without owning an event loop::

        with ServerThread(ServiceConfig(port=0)) as srv:
            with ServiceClient(port=srv.port) as client:
                blob = client.compress(array)
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig(port=0)
        self.server: CompressionServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    def __enter__(self) -> ServerThread:
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServiceError("server thread failed to start in time")
        if self._error is not None:
            raise ServiceError(f"server failed to start: {self._error}")
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _main(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = CompressionServer(self.config)
        try:
            await self.server.start()
        except BaseException as exc:
            self._error = exc
            self._started.set()
            return
        self._started.set()
        await self.server.wait_stopped()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Thread-safe graceful stop; idempotent."""
        if self._loop is None or self.server is None or self._error is not None:
            return
        if self._thread is None or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain=drain), self._loop
        )
        with contextlib.suppress(Exception):
            future.result(timeout=timeout)


def wait_for_port(
    host: str, port: int, *, timeout: float = 10.0
) -> None:
    """Block until a TCP connect to ``host:port`` succeeds (smoke tests)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return
        except OSError:
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"server on {host}:{port} did not come up within {timeout}s"
                ) from None
            time.sleep(0.05)
