"""Blocking client for a running ``fprz serve`` daemon.

One TCP connection, synchronous request/response::

    from repro.service.client import ServiceClient

    with ServiceClient(port=9753) as client:
        blob = client.compress(array)          # an FPRZ container
        restored = client.decompress(blob)     # numpy array back

The container bytes returned by :meth:`ServiceClient.compress` are
byte-identical to :func:`repro.compress` on the same input — the wire
payload *is* the at-rest format, so anything fetched remotely can be
written to disk and decoded by ``fprz decompress`` (and vice versa).

Beyond one-at-a-time calls the client speaks the two protocol-v1
extensions negotiated over PING (:meth:`ServiceClient.negotiate`):

* **Pipelining** — :meth:`ServiceClient.submit` sends a request without
  waiting, :meth:`ServiceClient.collect` claims its response by
  correlation id.  Responses may arrive out of order; frames for other
  outstanding ids are parked in a per-id inbox, so any interleaving the
  server produces is legal.
* **Streamed transfers** — :meth:`ServiceClient.compress_streamed` /
  :meth:`ServiceClient.decompress_streamed` move payloads as
  credit-windowed STREAM-DATA frames, so neither side ever holds the
  whole transfer (see :meth:`ServiceClient.iter_decompress_streamed`
  for the bounded-memory consumer).  Against a server that did not
  advertise the ``stream`` feature they transparently fall back to the
  unary opcodes.

Server-side failures surface as the same typed
:class:`~repro.errors.ReproError` family an in-process call would
raise; admission rejections raise :class:`~repro.errors.BusyError`,
deadline overruns :class:`~repro.errors.DeadlineExceededError`, and
quota rejections :class:`~repro.errors.QuotaExceededError`.
"""

from __future__ import annotations

import itertools
import json
import socket

import numpy as np

from repro.core import container as fmt
from repro.errors import (
    BusyError,
    ConnectionBrokenError,
    ProtocolError,
    ServiceError,
    UnsupportedDtypeError,
)
from repro.service import protocol as proto

_DTYPE_BY_CODE = {fmt.DTYPE_F32: np.dtype(np.float32),
                  fmt.DTYPE_F64: np.dtype(np.float64)}
_CODE_BY_DTYPE = {np.dtype(np.float32): fmt.DTYPE_F32,
                  np.dtype(np.float64): fmt.DTYPE_F64}


class ServiceClient:
    """A synchronous FPRW connection to one compression server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = proto.DEFAULT_PORT,
        *,
        timeout: float = 60.0,
        max_frame: int = proto.DEFAULT_MAX_FRAME,
    ) -> None:
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self._request_ids = itertools.count(1)
        self._broken: str | None = None
        #: Correlation ids submitted and not yet fully collected.
        self._pending: set[int] = set()
        #: Frames received for a pending id other than the one being
        #: awaited: ``rid -> [(opcode, body), ...]`` in arrival order.
        self._inbox: dict[int, list[tuple[int, bytes]]] = {}
        #: Set by :meth:`negotiate`; None until a PING has round-tripped.
        self.server_features: tuple[str, ...] | None = None
        self.server_stream_window: int | None = None
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to compression server at {host}:{port}: {exc}"
            ) from exc

    def close(self) -> None:
        self._sock.close()

    @property
    def broken(self) -> str | None:
        """Why this connection must not be reused, or None while healthy."""
        return self._broken

    def _poison(
        self, exc: Exception, reason: str, *, request_sent: bool = True
    ) -> Exception:
        """Mark the connection desynchronized; returns ``exc`` to raise.

        After a mid-frame timeout, a protocol violation, or a socket
        failure the stream position cannot be trusted: a late reply to
        the abandoned request would be mis-attributed to whatever is
        sent next.  Every error that leaves the socket in such a state
        funnels through here, so reuse fails fast and typed instead of
        silently returning another request's bytes.
        """
        self._broken = reason
        exc.request_sent = request_sent
        exc.transport = True
        return exc

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire plumbing ------------------------------------------------

    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        try:
            while remaining:
                chunk = self._sock.recv(min(remaining, 1 << 20))
                if not chunk:
                    raise self._poison(ProtocolError(
                        f"server closed the connection mid-frame "
                        f"({n - remaining} of {n} bytes received)"
                    ), "connection closed mid-frame")
                chunks.append(chunk)
                remaining -= len(chunk)
        except socket.timeout as exc:
            raise self._poison(ServiceError(
                f"timed out waiting for the server's reply: {exc}"
            ), "timed out mid-frame") from exc
        except OSError as exc:
            raise self._poison(ServiceError(
                f"connection failed mid-frame: {exc}"
            ), f"socket failure: {exc}") from exc
        return b"".join(chunks)

    def _check_usable(self) -> None:
        if self._broken is not None:
            raise ConnectionBrokenError(
                f"connection to {self.host}:{self.port} is desynchronized "
                f"({self._broken}); open a new one",
                request_sent=False,
            )

    def _send_raw(self, opcode: int, request_id: int, body: bytes = b"") -> None:
        try:
            self._sock.sendall(proto.encode_frame(opcode, request_id, body))
        except OSError as exc:
            # sendall may have flushed part of the frame before failing,
            # so the server might still act on the request: request_sent
            # stays conservatively True for the idempotency guard.
            raise self._poison(
                ServiceError(f"cannot send request: {exc}"),
                f"send failed: {exc}",
            ) from exc

    def submit(self, opcode: int, body: bytes = b"") -> int:
        """Send one request without waiting; returns its correlation id.

        The response is claimed later with :meth:`collect` — any number
        of requests may be in flight on the connection (pipelining), and
        the server may answer them in any order.
        """
        self._check_usable()
        if len(body) > self.max_frame:
            # Rejected before a byte hits the wire: the connection is
            # still perfectly synchronized, so it is NOT poisoned.
            exc = ProtocolError(
                f"request body of {len(body)} bytes exceeds the "
                f"{self.max_frame}-byte frame limit"
            )
            exc.request_sent = False
            raise exc
        request_id = next(self._request_ids)
        self._send_raw(opcode, request_id, body)
        self._pending.add(request_id)
        return request_id

    @property
    def in_flight(self) -> int:
        """Requests submitted and not yet fully collected."""
        return len(self._pending)

    def _read_frame(self) -> tuple[int, int, bytes]:
        header = self._recv_exactly(proto.HEADER_SIZE)
        try:
            opcode, rid, body_len = proto.parse_header(
                header, max_frame=self.max_frame
            )
        except ProtocolError as exc:
            raise self._poison(exc, "unparseable response header")
        return opcode, rid, self._recv_exactly(body_len)

    def _next_frame_for(self, request_id: int) -> tuple[int, bytes]:
        """The next response frame for ``request_id``, demultiplexing.

        Frames for *other* pending ids are parked in their inbox — only
        a frame for an id this client never submitted (or has already
        retired) desynchronizes the connection.
        """
        parked = self._inbox.get(request_id)
        if parked:
            frame = parked.pop(0)
            if not parked:
                del self._inbox[request_id]
            return frame
        while True:
            opcode, rid, body = self._read_frame()
            if rid == request_id:
                return opcode, body
            if rid in self._pending:
                self._inbox.setdefault(rid, []).append((opcode, body))
                continue
            raise self._poison(ProtocolError(
                f"response for unknown request id {rid} arrived while "
                f"awaiting request {request_id}"
            ), "response id mismatch")

    def _retire(self, request_id: int) -> None:
        self._pending.discard(request_id)
        self._inbox.pop(request_id, None)

    def collect(self, request_id: int) -> bytes:
        """Block for the response to a :meth:`submit`-ed request.

        Per-request rejections (BUSY, typed ERROR) raise without
        poisoning the connection — other in-flight requests on the same
        connection are unaffected.
        """
        self._check_usable()
        if request_id not in self._pending:
            raise ServiceError(
                f"request id {request_id} is not awaiting collection"
            )
        resp_opcode, resp_body = self._next_frame_for(request_id)
        self._retire(request_id)
        if resp_opcode == proto.OP_BUSY:
            try:
                hint = proto.decode_busy_body(resp_body)
            except ProtocolError as exc:
                raise self._poison(exc, "malformed BUSY body")
            raise BusyError(
                "server rejected the request: job queue past its high-water "
                "mark (retry after a backoff)",
                retry_after_ms=hint,
            )
        if resp_opcode == proto.OP_ERROR:
            code, message = proto.decode_error_body(resp_body)
            exc = proto.exception_for(code, f"server: {message}")
            if code == proto.ERR_PROTOCOL:
                # The server could not trust the frame it read — and this
                # library never sends a malformed one, so the wire mangled
                # it in transit (after a header-level rejection the server
                # drops the connection anyway).  Either way the request
                # was rejected before any codec work: provably not
                # applied, and safe to re-send on a fresh connection.
                raise self._poison(
                    exc, "server reported a protocol error",
                    request_sent=False,
                )
            raise exc
        if resp_opcode != proto.OP_RESULT:
            raise self._poison(ProtocolError(
                f"unexpected response opcode 0x{resp_opcode:02x}"
            ), "unexpected response opcode")
        return resp_body

    def _request(self, opcode: int, body: bytes = b"") -> bytes:
        return self.collect(self.submit(opcode, body))

    # -- operations ---------------------------------------------------

    @staticmethod
    def _array_payload(
        data: np.ndarray | bytes | bytearray | memoryview,
    ) -> tuple[bytes, int, tuple[int, ...] | None]:
        """``(raw_bytes, dtype_code, shape)`` for any supported input."""
        if isinstance(data, (bytes, bytearray, memoryview)):
            return bytes(data), fmt.DTYPE_BYTES, None
        array = np.asarray(data)
        code = _CODE_BY_DTYPE.get(array.dtype)
        if code is None:
            raise UnsupportedDtypeError(
                f"dtype {array.dtype} is not supported; use float32, "
                f"float64, or bytes"
            )
        return np.ascontiguousarray(array).tobytes(), code, array.shape

    @staticmethod
    def _view_payload(
        payload: bytes, dtype_code: int, shape: tuple[int, ...] | None
    ) -> np.ndarray | bytes:
        if dtype_code == fmt.DTYPE_BYTES:
            return payload
        array = np.frombuffer(payload, dtype=_DTYPE_BY_CODE[dtype_code])
        return array.reshape(shape) if shape is not None else array

    def submit_compress(
        self,
        data: np.ndarray | bytes | bytearray | memoryview,
        codec: str | None = None,
    ) -> int:
        """Pipeline a COMPRESS; collect the container with :meth:`collect`."""
        raw, dtype_code, shape = self._array_payload(data)
        body = proto.encode_compress_body(
            raw, codec=codec, dtype_code=dtype_code, shape=shape
        )
        return self.submit(proto.OP_COMPRESS, body)

    def submit_decompress(self, blob: bytes) -> int:
        """Pipeline a DECOMPRESS; collect with :meth:`collect_decompress`."""
        return self.submit(proto.OP_DECOMPRESS, bytes(blob))

    def collect_decompress(self, request_id: int) -> np.ndarray | bytes:
        """Claim a pipelined DECOMPRESS result as array/bytes."""
        dtype_code, shape, payload = proto.decode_array_body(
            self.collect(request_id)
        )
        return self._view_payload(payload, dtype_code, shape)

    def compress(
        self,
        data: np.ndarray | bytes | bytearray | memoryview,
        codec: str | None = None,
    ) -> bytes:
        """Compress remotely; returns the FPRZ container bytes."""
        return self.collect(self.submit_compress(data, codec))

    def decompress(self, blob: bytes) -> np.ndarray | bytes:
        """Decompress an FPRZ container remotely.

        Returns a numpy array with the original dtype/shape when the
        container was built from an array, raw bytes otherwise — the
        same contract as :func:`repro.decompress`.
        """
        return self.collect_decompress(self.submit_decompress(blob))

    def inspect(self, blob: bytes) -> dict:
        """Container metadata as a dict, parsed server-side."""
        return self._json(self._request(proto.OP_INSPECT, bytes(blob)))

    def stats(self) -> dict:
        """The server's live metrics snapshot (STATS opcode)."""
        return self._json(self._request(proto.OP_STATS))

    def ping(self) -> bool:
        """Round-trip an empty frame; True when the server answered."""
        self._request(proto.OP_PING)
        return True

    # -- negotiation and streamed transfers ---------------------------

    def negotiate(self, *, tenant: str | None = None) -> dict:
        """Advertise this client's features (and tenant) over PING.

        Returns the server's negotiation document.  An empty reply body
        identifies a protocol-v1 peer: ``server_features`` becomes the
        empty tuple and the streamed methods fall back to unary frames.
        """
        reply = self._request(
            proto.OP_PING, proto.encode_ping_body(proto.FEATURES, tenant=tenant)
        )
        doc = proto.decode_ping_body(reply)
        self.server_features = tuple(doc.get("features", ()))
        window = doc.get("stream_window")
        self.server_stream_window = int(window) if window is not None else None
        return doc

    def supports(self, feature: str) -> bool:
        """Whether the server advertised ``feature`` (negotiates lazily)."""
        if self.server_features is None:
            self.negotiate()
        return feature in self.server_features

    #: Default STREAM-DATA piece size: large enough to amortise framing,
    #: small enough that credit replenishment keeps the pipe busy.
    STREAM_PIECE = 256 * 1024

    def _stream(
        self,
        mode: int,
        raw: bytes,
        *,
        codec: str | None = None,
        dtype_code: int = fmt.DTYPE_BYTES,
        shape: tuple[int, ...] | None = None,
        piece_size: int | None = None,
    ):
        """Drive one streamed transfer; a generator of stream events.

        Yields ``("chunk", index, payload)`` for each STREAM-RESULT as
        it arrives and finally ``("done", dtype_code, shape, extra)``
        from the trailer.  STREAM-DATA is sent strictly within the
        credit the server has granted, so client-side sends can never
        violate the server's window.
        """
        piece = min(piece_size or self.STREAM_PIECE, self.max_frame)
        begin = proto.encode_stream_begin(
            mode, total_len=len(raw), codec=codec,
            dtype_code=dtype_code, shape=shape,
        )
        request_id = self.submit(proto.OP_STREAM_BEGIN, begin)
        sent = 0
        credit = 0
        ended = False
        done = False
        try:
            while True:
                opcode, body = self._next_frame_for(request_id)
                if opcode == proto.OP_STREAM_ACK:
                    credit += proto.decode_stream_ack(body)
                    while credit > 0 and sent < len(raw):
                        n = min(piece, credit, len(raw) - sent)
                        self._send_raw(
                            proto.OP_STREAM_DATA, request_id,
                            raw[sent:sent + n],
                        )
                        sent += n
                        credit -= n
                    if sent == len(raw) and not ended:
                        self._send_raw(proto.OP_STREAM_END, request_id)
                        ended = True
                    continue
                if opcode == proto.OP_STREAM_RESULT:
                    index, payload = proto.decode_stream_result(body)
                    yield ("chunk", index, payload)
                    continue
                if opcode == proto.OP_STREAM_DONE:
                    self._retire(request_id)
                    done = True
                    yield ("done", *proto.decode_stream_trailer(body))
                    return
                if opcode == proto.OP_BUSY:
                    self._retire(request_id)
                    done = True  # rejected before any work: clean state
                    hint = proto.decode_busy_body(body)
                    raise BusyError(
                        "server rejected the stream: job queue past its "
                        "high-water mark (retry after a backoff)",
                        retry_after_ms=hint,
                    )
                if opcode == proto.OP_ERROR:
                    self._retire(request_id)
                    done = True  # server tombstones the id; wire stays framed
                    code, message = proto.decode_error_body(body)
                    exc = proto.exception_for(code, f"server: {message}")
                    # The half-sent guard: a stream that already moved
                    # DATA may have been partially applied server-side.
                    exc.request_sent = sent > 0
                    if code == proto.ERR_PROTOCOL:
                        raise self._poison(
                            exc, "server reported a stream protocol error",
                            request_sent=sent > 0,
                        )
                    raise exc
                raise self._poison(ProtocolError(
                    f"unexpected stream response opcode 0x{opcode:02x}"
                ), "unexpected response opcode")
        finally:
            if not done and self._broken is None:
                # The consumer abandoned the generator mid-stream: the
                # server still owes frames for this id, so the stream
                # position is unrecoverable for future requests.
                self._broken = "stream abandoned mid-flight"

    def compress_streamed(
        self,
        data: np.ndarray | bytes | bytearray | memoryview,
        codec: str | None = None,
        *,
        piece_size: int | None = None,
    ) -> bytes:
        """Compress via a windowed stream; returns the container bytes.

        The server never buffers more than its stream window of this
        payload, so arbitrarily large inputs compress in bounded server
        memory.  Falls back to unary :meth:`compress` against a server
        that did not negotiate the ``stream`` feature.
        """
        if not self.supports("stream"):
            return self.compress(data, codec)
        raw, dtype_code, shape = self._array_payload(data)
        chunks: dict[int, bytes] = {}
        prefix = b""
        for event in self._stream(
            proto.STREAM_COMPRESS, raw, codec=codec,
            dtype_code=dtype_code, shape=shape, piece_size=piece_size,
        ):
            if event[0] == "chunk":
                chunks[event[1]] = event[2]
            else:
                prefix = event[3]
        return prefix + b"".join(chunks[i] for i in sorted(chunks))

    def decompress_streamed(
        self, blob: bytes, *, piece_size: int | None = None
    ) -> np.ndarray | bytes:
        """Decompress a container via a windowed stream.

        Same contract as :meth:`decompress`; falls back to it against a
        stream-less server.
        """
        if not self.supports("stream"):
            return self.decompress(blob)
        chunks: list[bytes] = []
        trailer: tuple = (fmt.DTYPE_BYTES, None)
        for event in self._stream(
            proto.STREAM_DECOMPRESS, bytes(blob), piece_size=piece_size
        ):
            if event[0] == "chunk":
                chunks.append(event[2])
            else:
                trailer = (event[1], event[2])
        return self._view_payload(b"".join(chunks), *trailer)

    def iter_decompress_streamed(
        self, blob: bytes, *, piece_size: int | None = None
    ):
        """Yield decoded byte chunks in order as the server emits them.

        The bounded-memory consumer: no more than one decoded chunk is
        held client-side.  Yields raw ``bytes`` pieces whose
        concatenation is the decompressed payload.
        """
        if not self.supports("stream"):
            result = self.decompress(blob)
            raw = result if isinstance(result, bytes) else result.tobytes()
            for start in range(0, len(raw), self.STREAM_PIECE):
                yield raw[start:start + self.STREAM_PIECE]
            return
        expected = 0
        for event in self._stream(
            proto.STREAM_DECOMPRESS, bytes(blob), piece_size=piece_size
        ):
            if event[0] != "chunk":
                return
            index, payload = event[1], event[2]
            if index != expected:
                raise self._poison(ProtocolError(
                    f"stream chunk {index} arrived out of order "
                    f"(expected {expected})"
                ), "stream results out of order")
            expected += 1
            yield payload

    @staticmethod
    def _json(body: bytes) -> dict:
        try:
            return json.loads(body.decode("utf-8"))
        except ValueError as exc:
            raise ProtocolError(f"malformed JSON result body: {exc}") from exc
