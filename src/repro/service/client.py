"""Blocking client for a running ``fprz serve`` daemon.

One TCP connection, synchronous request/response::

    from repro.service.client import ServiceClient

    with ServiceClient(port=9753) as client:
        blob = client.compress(array)          # an FPRZ container
        restored = client.decompress(blob)     # numpy array back

The container bytes returned by :meth:`ServiceClient.compress` are
byte-identical to :func:`repro.compress` on the same input — the wire
payload *is* the at-rest format, so anything fetched remotely can be
written to disk and decoded by ``fprz decompress`` (and vice versa).

Server-side failures surface as the same typed
:class:`~repro.errors.ReproError` family an in-process call would
raise; admission rejections raise :class:`~repro.errors.BusyError`,
deadline overruns :class:`~repro.errors.DeadlineExceededError`.
"""

from __future__ import annotations

import itertools
import json
import socket

import numpy as np

from repro.core import container as fmt
from repro.errors import (
    BusyError,
    ConnectionBrokenError,
    ProtocolError,
    ServiceError,
    UnsupportedDtypeError,
)
from repro.service import protocol as proto

_DTYPE_BY_CODE = {fmt.DTYPE_F32: np.dtype(np.float32),
                  fmt.DTYPE_F64: np.dtype(np.float64)}
_CODE_BY_DTYPE = {np.dtype(np.float32): fmt.DTYPE_F32,
                  np.dtype(np.float64): fmt.DTYPE_F64}


class ServiceClient:
    """A synchronous FPRW connection to one compression server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = proto.DEFAULT_PORT,
        *,
        timeout: float = 60.0,
        max_frame: int = proto.DEFAULT_MAX_FRAME,
    ) -> None:
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self._request_ids = itertools.count(1)
        self._broken: str | None = None
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to compression server at {host}:{port}: {exc}"
            ) from exc

    def close(self) -> None:
        self._sock.close()

    @property
    def broken(self) -> str | None:
        """Why this connection must not be reused, or None while healthy."""
        return self._broken

    def _poison(
        self, exc: Exception, reason: str, *, request_sent: bool = True
    ) -> Exception:
        """Mark the connection desynchronized; returns ``exc`` to raise.

        After a mid-frame timeout, a protocol violation, or a socket
        failure the stream position cannot be trusted: a late reply to
        the abandoned request would be mis-attributed to whatever is
        sent next.  Every error that leaves the socket in such a state
        funnels through here, so reuse fails fast and typed instead of
        silently returning another request's bytes.
        """
        self._broken = reason
        exc.request_sent = request_sent
        exc.transport = True
        return exc

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire plumbing ------------------------------------------------

    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        try:
            while remaining:
                chunk = self._sock.recv(min(remaining, 1 << 20))
                if not chunk:
                    raise self._poison(ProtocolError(
                        f"server closed the connection mid-frame "
                        f"({n - remaining} of {n} bytes received)"
                    ), "connection closed mid-frame")
                chunks.append(chunk)
                remaining -= len(chunk)
        except socket.timeout as exc:
            raise self._poison(ServiceError(
                f"timed out waiting for the server's reply: {exc}"
            ), "timed out mid-frame") from exc
        except OSError as exc:
            raise self._poison(ServiceError(
                f"connection failed mid-frame: {exc}"
            ), f"socket failure: {exc}") from exc
        return b"".join(chunks)

    def _request(self, opcode: int, body: bytes = b"") -> bytes:
        if self._broken is not None:
            raise ConnectionBrokenError(
                f"connection to {self.host}:{self.port} is desynchronized "
                f"({self._broken}); open a new one",
                request_sent=False,
            )
        if len(body) > self.max_frame:
            # Rejected before a byte hits the wire: the connection is
            # still perfectly synchronized, so it is NOT poisoned.
            exc = ProtocolError(
                f"request body of {len(body)} bytes exceeds the "
                f"{self.max_frame}-byte frame limit"
            )
            exc.request_sent = False
            raise exc
        request_id = next(self._request_ids)
        try:
            self._sock.sendall(proto.encode_frame(opcode, request_id, body))
        except OSError as exc:
            # sendall may have flushed part of the frame before failing,
            # so the server might still act on the request: request_sent
            # stays conservatively True for the idempotency guard.
            raise self._poison(
                ServiceError(f"cannot send request: {exc}"),
                f"send failed: {exc}",
            ) from exc
        header = self._recv_exactly(proto.HEADER_SIZE)
        try:
            resp_opcode, resp_id, body_len = proto.parse_header(
                header, max_frame=self.max_frame
            )
        except ProtocolError as exc:
            raise self._poison(exc, "unparseable response header")
        resp_body = self._recv_exactly(body_len)
        if resp_id != request_id:
            raise self._poison(ProtocolError(
                f"response for request {resp_id} arrived while awaiting "
                f"request {request_id}"
            ), "response id mismatch")
        if resp_opcode == proto.OP_BUSY:
            try:
                hint = proto.decode_busy_body(resp_body)
            except ProtocolError as exc:
                raise self._poison(exc, "malformed BUSY body")
            raise BusyError(
                "server rejected the request: job queue past its high-water "
                "mark (retry after a backoff)",
                retry_after_ms=hint,
            )
        if resp_opcode == proto.OP_ERROR:
            code, message = proto.decode_error_body(resp_body)
            exc = proto.exception_for(code, f"server: {message}")
            if code == proto.ERR_PROTOCOL:
                # The server could not trust the frame it read — and this
                # library never sends a malformed one, so the wire mangled
                # it in transit (after a header-level rejection the server
                # drops the connection anyway).  Either way the request
                # was rejected before any codec work: provably not
                # applied, and safe to re-send on a fresh connection.
                raise self._poison(
                    exc, "server reported a protocol error",
                    request_sent=False,
                )
            raise exc
        if resp_opcode != proto.OP_RESULT:
            raise self._poison(ProtocolError(
                f"unexpected response opcode 0x{resp_opcode:02x}"
            ), "unexpected response opcode")
        return resp_body

    # -- operations ---------------------------------------------------

    def compress(
        self,
        data: np.ndarray | bytes | bytearray | memoryview,
        codec: str | None = None,
    ) -> bytes:
        """Compress remotely; returns the FPRZ container bytes."""
        if isinstance(data, (bytes, bytearray, memoryview)):
            body = proto.encode_compress_body(
                bytes(data), codec=codec, dtype_code=fmt.DTYPE_BYTES
            )
        else:
            array = np.asarray(data)
            code = _CODE_BY_DTYPE.get(array.dtype)
            if code is None:
                raise UnsupportedDtypeError(
                    f"dtype {array.dtype} is not supported; use float32, "
                    f"float64, or bytes"
                )
            body = proto.encode_compress_body(
                np.ascontiguousarray(array).tobytes(),
                codec=codec, dtype_code=code, shape=array.shape,
            )
        return self._request(proto.OP_COMPRESS, body)

    def decompress(self, blob: bytes) -> np.ndarray | bytes:
        """Decompress an FPRZ container remotely.

        Returns a numpy array with the original dtype/shape when the
        container was built from an array, raw bytes otherwise — the
        same contract as :func:`repro.decompress`.
        """
        resp = self._request(proto.OP_DECOMPRESS, bytes(blob))
        dtype_code, shape, payload = proto.decode_array_body(resp)
        if dtype_code == fmt.DTYPE_BYTES:
            return payload
        array = np.frombuffer(payload, dtype=_DTYPE_BY_CODE[dtype_code])
        return array.reshape(shape) if shape is not None else array

    def inspect(self, blob: bytes) -> dict:
        """Container metadata as a dict, parsed server-side."""
        return self._json(self._request(proto.OP_INSPECT, bytes(blob)))

    def stats(self) -> dict:
        """The server's live metrics snapshot (STATS opcode)."""
        return self._json(self._request(proto.OP_STATS))

    def ping(self) -> bool:
        """Round-trip an empty frame; True when the server answered."""
        self._request(proto.OP_PING)
        return True

    @staticmethod
    def _json(body: bytes) -> dict:
        try:
            return json.loads(body.decode("utf-8"))
        except ValueError as exc:
            raise ProtocolError(f"malformed JSON result body: {exc}") from exc
