"""Blocking client for a running ``fprz serve`` daemon.

One TCP connection, synchronous request/response::

    from repro.service.client import ServiceClient

    with ServiceClient(port=9753) as client:
        blob = client.compress(array)          # an FPRZ container
        restored = client.decompress(blob)     # numpy array back

The container bytes returned by :meth:`ServiceClient.compress` are
byte-identical to :func:`repro.compress` on the same input — the wire
payload *is* the at-rest format, so anything fetched remotely can be
written to disk and decoded by ``fprz decompress`` (and vice versa).

Server-side failures surface as the same typed
:class:`~repro.errors.ReproError` family an in-process call would
raise; admission rejections raise :class:`~repro.errors.BusyError`,
deadline overruns :class:`~repro.errors.DeadlineExceededError`.
"""

from __future__ import annotations

import itertools
import json
import socket

import numpy as np

from repro.core import container as fmt
from repro.errors import BusyError, ProtocolError, ServiceError, UnsupportedDtypeError
from repro.service import protocol as proto

_DTYPE_BY_CODE = {fmt.DTYPE_F32: np.dtype(np.float32),
                  fmt.DTYPE_F64: np.dtype(np.float64)}
_CODE_BY_DTYPE = {np.dtype(np.float32): fmt.DTYPE_F32,
                  np.dtype(np.float64): fmt.DTYPE_F64}


class ServiceClient:
    """A synchronous FPRW connection to one compression server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = proto.DEFAULT_PORT,
        *,
        timeout: float = 60.0,
        max_frame: int = proto.DEFAULT_MAX_FRAME,
    ) -> None:
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self._request_ids = itertools.count(1)
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to compression server at {host}:{port}: {exc}"
            ) from exc

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire plumbing ------------------------------------------------

    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        try:
            while remaining:
                chunk = self._sock.recv(min(remaining, 1 << 20))
                if not chunk:
                    raise ProtocolError(
                        f"server closed the connection mid-frame "
                        f"({n - remaining} of {n} bytes received)"
                    )
                chunks.append(chunk)
                remaining -= len(chunk)
        except socket.timeout as exc:
            raise ServiceError(
                f"timed out waiting for the server's reply: {exc}"
            ) from exc
        return b"".join(chunks)

    def _request(self, opcode: int, body: bytes = b"") -> bytes:
        if len(body) > self.max_frame:
            raise ProtocolError(
                f"request body of {len(body)} bytes exceeds the "
                f"{self.max_frame}-byte frame limit"
            )
        request_id = next(self._request_ids)
        try:
            self._sock.sendall(proto.encode_frame(opcode, request_id, body))
        except OSError as exc:
            raise ServiceError(f"cannot send request: {exc}") from exc
        header = self._recv_exactly(proto.HEADER_SIZE)
        resp_opcode, resp_id, body_len = proto.parse_header(
            header, max_frame=self.max_frame
        )
        resp_body = self._recv_exactly(body_len)
        if resp_id != request_id:
            raise ProtocolError(
                f"response for request {resp_id} arrived while awaiting "
                f"request {request_id}"
            )
        if resp_opcode == proto.OP_BUSY:
            raise BusyError(
                "server rejected the request: job queue past its high-water "
                "mark (retry after a backoff)"
            )
        if resp_opcode == proto.OP_ERROR:
            code, message = proto.decode_error_body(resp_body)
            raise proto.exception_for(code, f"server: {message}")
        if resp_opcode != proto.OP_RESULT:
            raise ProtocolError(
                f"unexpected response opcode 0x{resp_opcode:02x}"
            )
        return resp_body

    # -- operations ---------------------------------------------------

    def compress(
        self,
        data: np.ndarray | bytes | bytearray | memoryview,
        codec: str | None = None,
    ) -> bytes:
        """Compress remotely; returns the FPRZ container bytes."""
        if isinstance(data, (bytes, bytearray, memoryview)):
            body = proto.encode_compress_body(
                bytes(data), codec=codec, dtype_code=fmt.DTYPE_BYTES
            )
        else:
            array = np.asarray(data)
            code = _CODE_BY_DTYPE.get(array.dtype)
            if code is None:
                raise UnsupportedDtypeError(
                    f"dtype {array.dtype} is not supported; use float32, "
                    f"float64, or bytes"
                )
            body = proto.encode_compress_body(
                np.ascontiguousarray(array).tobytes(),
                codec=codec, dtype_code=code, shape=array.shape,
            )
        return self._request(proto.OP_COMPRESS, body)

    def decompress(self, blob: bytes) -> np.ndarray | bytes:
        """Decompress an FPRZ container remotely.

        Returns a numpy array with the original dtype/shape when the
        container was built from an array, raw bytes otherwise — the
        same contract as :func:`repro.decompress`.
        """
        resp = self._request(proto.OP_DECOMPRESS, bytes(blob))
        dtype_code, shape, payload = proto.decode_array_body(resp)
        if dtype_code == fmt.DTYPE_BYTES:
            return payload
        array = np.frombuffer(payload, dtype=_DTYPE_BY_CODE[dtype_code])
        return array.reshape(shape) if shape is not None else array

    def inspect(self, blob: bytes) -> dict:
        """Container metadata as a dict, parsed server-side."""
        return self._json(self._request(proto.OP_INSPECT, bytes(blob)))

    def stats(self) -> dict:
        """The server's live metrics snapshot (STATS opcode)."""
        return self._json(self._request(proto.OP_STATS))

    def ping(self) -> bool:
        """Round-trip an empty frame; True when the server answered."""
        self._request(proto.OP_PING)
        return True

    @staticmethod
    def _json(body: bytes) -> dict:
        try:
            return json.loads(body.decode("utf-8"))
        except ValueError as exc:
            raise ProtocolError(f"malformed JSON result body: {exc}") from exc
