"""A deterministic chaos proxy for the FPRW wire protocol.

``fprz chaos`` sits between a client (or router) and a server and
injects network faults on a *seeded schedule*: every observed frame
advances an event counter, and the fault decision for event ``i`` is
drawn from ``np.random.default_rng([seed, i])`` — the same
seed-plus-index convention as the fuzzing subsystem
(:mod:`repro.fuzzing`), so any failure found under the proxy replays
exactly from ``(seed, event_index)``.  :func:`schedule_preview` prints
the decisions a seed will make before any traffic flows.

Injected faults, all at frame granularity (the proxy parses FPRW
headers to find frame boundaries, which is what makes *mid-frame*
faults expressible):

* ``reset`` — drop the frame and abort both sides of the connection.
* ``truncate`` — forward only a prefix of the frame, then abort:
  the peer observes a mid-frame connection loss.
* ``corrupt`` — XOR one byte of the 20-byte frame header: magic,
  version, flags, or reserved (offsets 0..4, 6, 7).  Every one of those
  bytes is strictly validated by
  :func:`repro.service.protocol.parse_header`, so the corruption is
  always *detected* and surfaces as a retryable desync, exercising the
  typed-error path rather than silently delivering wrong bytes.  The
  opcode byte is deliberately spared: an opcode XOR can turn one valid
  request into another (COMPRESS into DECOMPRESS), which no protocol
  layer can detect — and payload integrity belongs to the container's
  CRC layer, which ``fprz fuzz`` attacks directly.
* ``delay`` — hold the frame for a seeded number of milliseconds.
* ``blackhole`` — from this frame on, consume this direction of this
  connection and forward nothing: the peer hangs until its timeout.

The proxy can also simulate a backend dying mid-run: after
``kill_after_frames`` observed frames (or a programmatic
:meth:`ChaosProxy.kill`), every connection is aborted and new ones are
closed on accept until :meth:`ChaosProxy.revive`.

Determinism note: the schedule is exact for serial workloads (one
request in flight at a time — the CI chaos-smoke case).  Under
concurrent connections the *set* of decisions is fixed by the seed but
their assignment to frames follows arrival order.

Stream awareness: a streamed transfer (protocol v2) is *many* frames
per correlation id — BEGIN, a ladder of DATA/ACK exchanges, END, then
RESULT frames and a DONE trailer.  The proxy parses the opcode and
correlation id out of every header, so each of those frames gets its
own schedule decision at its own frame boundary (a truncate can land
on the 17th DATA frame of a stream, not just on whole requests), every
injection is labelled with the opcode it hit, and the per-stream event
log (:attr:`ChaosProxy.stream_events`) records which stream each
decision landed on.  :func:`stream_schedule_preview` prints the same
thing *before* any traffic for the canonical serial stream ladder.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import struct
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ServiceError
from repro.service import protocol as proto
from repro.service.metrics import MetricsRegistry
from repro.service.resilience import parse_address

#: Fault kinds in schedule order (the cumulative-rate draw walks this).
FAULT_ACTIONS = ("reset", "truncate", "corrupt", "delay", "blackhole")

#: Header offsets eligible for corruption: magic(0-3), version(4),
#: flags(6), reserved(7) — each strictly validated on parse, so every
#: hit is detected.  Offset 5 (opcode) is spared: flipping it can
#: produce a *different valid request*, which is undetectable.
_CORRUPTIBLE_OFFSETS = (0, 1, 2, 3, 4, 6, 7)


@dataclass(frozen=True)
class ChaosConfig:
    """Tunables of one :class:`ChaosProxy`."""

    #: Upstream server as ``(host, port)`` or ``"host:port"``.
    upstream: tuple | str = ("127.0.0.1", proto.DEFAULT_PORT)
    host: str = "127.0.0.1"
    #: Listen port; 0 binds an ephemeral port (read ``proxy.port`` back).
    port: int = 0
    #: Seed of the fault schedule (``default_rng([seed, event_index])``).
    seed: int = 0
    #: Per-frame fault probabilities; the remainder passes untouched.
    reset_rate: float = 0.0
    truncate_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    blackhole_rate: float = 0.0
    #: Latency-spike range in milliseconds (uniform, seeded draw).
    delay_ms: tuple = (5.0, 50.0)
    #: Abort everything after this many observed frames (None = never).
    kill_after_frames: int | None = None
    #: Which direction faults apply to: "request", "response", or "both".
    direction: str = "both"

    def rates(self) -> tuple[float, ...]:
        return (
            self.reset_rate,
            self.truncate_rate,
            self.corrupt_rate,
            self.delay_rate,
            self.blackhole_rate,
        )

    def __post_init__(self) -> None:
        if self.direction not in ("request", "response", "both"):
            raise ServiceError(
                f"direction {self.direction!r} must be request|response|both"
            )
        if any(r < 0 for r in self.rates()) or sum(self.rates()) > 1.0:
            raise ServiceError(
                "fault rates must be non-negative and sum to at most 1.0"
            )


def _draw(config: ChaosConfig, index: int):
    """The seeded decision for event ``index``: (action, rng)."""
    rng = np.random.default_rng([config.seed, index])
    u = float(rng.random())
    for action, rate in zip(FAULT_ACTIONS, config.rates()):
        u -= rate
        if u < 0:
            return action, rng
    return "pass", rng


def schedule_preview(config: ChaosConfig, n: int) -> list[tuple[int, str]]:
    """The first ``n`` (event_index, action) decisions of a seed.

    The replay convention made inspectable: what the proxy *will* do is
    a pure function of ``(seed, index)``, printable before a run and
    reconstructable after one.
    """
    return [(i, _draw(config, i)[0]) for i in range(n)]


#: Stream opcodes, for per-stream annotation of schedule decisions.
_STREAM_OPCODES = frozenset((
    proto.OP_STREAM_BEGIN, proto.OP_STREAM_DATA, proto.OP_STREAM_END,
    proto.OP_STREAM_ACK, proto.OP_STREAM_RESULT, proto.OP_STREAM_DONE,
))


def _stream_ladder(data_frames: int) -> list[tuple[str, str]]:
    """The canonical serial wire exchange of one streamed transfer.

    Returns ``(frame_kind, direction)`` pairs in arrival order for a
    stream carrying ``data_frames`` DATA frames, assuming the lockstep
    cadence of a serial client (each DATA acknowledged before the
    next): BEGIN, initial ACK, then DATA/ACK pairs, END, one RESULT
    per DATA frame, and the DONE trailer.  Real cadence can batch ACKs
    and RESULTs; this ladder is the worst case (most frames, most
    schedule events) and is exact for the CI chaos-smoke workload.
    """
    ladder: list[tuple[str, str]] = [
        ("stream-begin", "request"), ("stream-ack", "response"),
    ]
    for _ in range(data_frames):
        ladder.append(("stream-data", "request"))
        ladder.append(("stream-ack", "response"))
    ladder.append(("stream-end", "request"))
    ladder.extend(("stream-result", "response") for _ in range(data_frames))
    ladder.append(("stream-done", "response"))
    return ladder


def stream_schedule_preview(
    config: ChaosConfig, *, streams: int, data_frames: int
) -> list[tuple[int, int, str, str, str]]:
    """Per-stream schedule: what a seed will do to ``streams`` serial
    streamed transfers of ``data_frames`` DATA frames each.

    Returns ``(event_index, stream, frame_kind, direction, action)``
    rows in arrival order.  Frames in a direction the config does not
    fault are shown with action ``pass``; the event counter still
    advances for them, exactly as in :meth:`ChaosProxy._pump`.
    """
    rows: list[tuple[int, int, str, str, str]] = []
    index = 0
    for stream in range(streams):
        for kind, direction in _stream_ladder(data_frames):
            faultable = config.direction in (direction, "both")
            action = _draw(config, index)[0] if faultable else "pass"
            rows.append((index, stream, kind, direction, action))
            index += 1
    return rows


class ChaosProxy:
    """A frame-aware TCP proxy that injects seeded faults."""

    def __init__(
        self,
        config: ChaosConfig,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.registry = registry or MetricsRegistry()
        self.upstream = parse_address(config.upstream)
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._conns: set[asyncio.StreamWriter] = set()
        self._tasks: set[asyncio.Task] = set()
        self._event_index = 0
        self._killed = False
        self._stopped: asyncio.Event | None = None
        #: Per-stream event log: (event_index, direction, frame_kind,
        #: correlation_id, action) for every stream frame observed.
        #: Bounded; the replay convention ``(seed, index)`` recovers
        #: anything that scrolled off.
        self.stream_events: list[tuple[int, str, str, int, str]] = []

    _STREAM_EVENT_CAP = 8192

    @property
    def frames_observed(self) -> int:
        return self._event_index

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._stopped is None or self._stopped.is_set():
            return
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in tuple(self._tasks):
            task.cancel()
        self._abort_all()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, "proxy not started"
        await self._stopped.wait()

    async def run(self, *, install_signals: bool = True, on_started=None) -> None:
        await self.start()
        if on_started is not None:
            on_started()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(
                        sig, lambda: asyncio.ensure_future(self.stop())
                    )
        await self.wait_stopped()

    # -- kill switch --------------------------------------------------

    def kill(self) -> None:
        """Abort every connection and refuse new ones (a dead backend)."""
        if not self._killed:
            self._killed = True
            self.registry.counter("chaos_kills_total").inc()
        self._abort_all()

    def revive(self) -> None:
        """Accept traffic again after :meth:`kill`."""
        self._killed = False

    def _abort_all(self) -> None:
        for writer in tuple(self._conns):
            self._abort(writer)
        self._conns.clear()

    @staticmethod
    def _abort(writer: asyncio.StreamWriter) -> None:
        with contextlib.suppress(Exception):
            transport = writer.transport
            if transport is not None:
                transport.abort()  # RST-style: no FIN handshake to hang on

    # -- the two pumps ------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._killed:
            self._abort(writer)
            return
        try:
            up_reader, up_writer = await asyncio.open_connection(*self.upstream)
        except OSError:
            self._abort(writer)
            return
        self._conns.add(writer)
        self._conns.add(up_writer)
        self.registry.counter("chaos_connections_total").inc()
        pumps = [
            asyncio.ensure_future(
                self._pump(reader, up_writer, direction="request")
            ),
            asyncio.ensure_future(
                self._pump(up_reader, writer, direction="response")
            ),
        ]
        for task in pumps:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        try:
            await asyncio.gather(*pumps, return_exceptions=True)
        finally:
            for w in (writer, up_writer):
                self._conns.discard(w)
                self._abort(w)

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        dst: asyncio.StreamWriter,
        *,
        direction: str,
    ) -> None:
        """Forward frames one way, consulting the schedule per frame."""
        cfg = self.config
        blackholed = False
        while True:
            try:
                header = await reader.readexactly(proto.HEADER_SIZE)
                body_len = struct.unpack_from("<I", header, 16)[0]
                body = await reader.readexactly(body_len) if body_len else b""
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                self._abort(dst)
                return
            opcode = header[5]
            opname = proto.OPCODE_NAMES.get(opcode, f"0x{opcode:02x}")
            index = self._event_index
            self._event_index += 1
            if (
                cfg.kill_after_frames is not None
                and self._event_index >= cfg.kill_after_frames
            ):
                self.kill()
                return
            if self._killed:
                self._abort(dst)
                return
            if blackholed:
                continue  # consume and drop: the peer waits forever
            faultable = cfg.direction in (direction, "both")
            action, rng = (
                _draw(cfg, index) if faultable else ("pass", None)
            )
            if opcode in _STREAM_OPCODES:
                # Per-stream decision log: which frame of which stream
                # each schedule event landed on.
                if len(self.stream_events) < self._STREAM_EVENT_CAP:
                    rid = struct.unpack_from("<Q", header, 8)[0]
                    self.stream_events.append(
                        (index, direction, opname, rid, action)
                    )
            if action != "pass":
                self.registry.counter(
                    "chaos_injections_total", action=action, opcode=opname
                ).inc()
            if action == "reset":
                self._abort(dst)
                return
            if action == "truncate":
                frame = header + body
                cut = int(rng.integers(1, len(frame)))
                with contextlib.suppress(ConnectionError, OSError):
                    dst.write(frame[:cut])
                    await dst.drain()
                self._abort(dst)
                return
            if action == "corrupt":
                offset = _CORRUPTIBLE_OFFSETS[
                    int(rng.integers(0, len(_CORRUPTIBLE_OFFSETS)))
                ]
                mask = int(rng.integers(1, 256))
                mutated = bytearray(header)
                mutated[offset] ^= mask
                header = bytes(mutated)
            elif action == "delay":
                low, high = cfg.delay_ms
                await asyncio.sleep(float(rng.uniform(low, high)) / 1e3)
            elif action == "blackhole":
                blackholed = True
                continue
            try:
                dst.write(header + body)
                await dst.drain()
            except (ConnectionError, OSError):
                return


class ChaosProxyThread:
    """Run a :class:`ChaosProxy` on a background thread (test harness)."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self.proxy: ChaosProxy | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.proxy is not None and self.proxy.port is not None
        return self.proxy.port

    def kill(self) -> None:
        """Thread-safe :meth:`ChaosProxy.kill`."""
        assert self.proxy is not None and self._loop is not None
        self._loop.call_soon_threadsafe(self.proxy.kill)

    def revive(self) -> None:
        assert self.proxy is not None and self._loop is not None
        self._loop.call_soon_threadsafe(self.proxy.revive)

    def __enter__(self) -> "ChaosProxyThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-chaos", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServiceError("chaos proxy thread failed to start in time")
        if self._error is not None:
            raise ServiceError(f"chaos proxy failed to start: {self._error}")
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _main(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.proxy = ChaosProxy(self.config)
        try:
            await self.proxy.start()
        except BaseException as exc:
            self._error = exc
            self._started.set()
            return
        self._started.set()
        await self.proxy.wait_stopped()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None or self.proxy is None or self._error is not None:
            return
        if self._thread is None or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.proxy.stop(), self._loop
        )
        with contextlib.suppress(Exception):
            future.result(timeout=timeout)


def wait_for_chaos_port(host: str, port: int, *, timeout: float = 10.0) -> None:
    """Block until the proxy's listen port accepts (CI smoke scripts)."""
    import socket as _socket

    deadline = time.monotonic() + timeout
    while True:
        try:
            with _socket.create_connection((host, port), timeout=1.0):
                return
        except OSError:
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"chaos proxy on {host}:{port} did not come up within "
                    f"{timeout}s"
                ) from None
            time.sleep(0.05)
