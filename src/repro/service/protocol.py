"""The FPRW framed wire protocol spoken by ``fprz serve``.

Every message between client and server is one length-prefixed frame::

    =========== ===== ====================================================
    field       bytes meaning
    =========== ===== ====================================================
    magic           4 ``b"FPRW"``
    version         1 wire protocol version (currently 1)
    opcode          1 request or response opcode (tables below)
    flags           1 reserved, must be 0
    reserved        1 reserved, must be 0
    request_id      8 u64 chosen by the client, echoed in the response
    body_len        4 u32 length of the body that follows
    body            v ``body_len`` bytes, layout per opcode
    =========== ===== ====================================================

All integers are little-endian, matching the FPRZ container.  The
``body_len`` field is validated against the negotiated frame limit
*before* any buffer is sized from it, so a hostile frame fails with a
typed :class:`~repro.errors.ProtocolError`, never an allocation bomb.

Request opcodes: COMPRESS, DECOMPRESS, INSPECT, STATS, PING, and the
streamed trio STREAM-BEGIN / STREAM-DATA / STREAM-END.  Responses are
RESULT (success), ERROR (typed failure, body = error code + UTF-8
message), BUSY (admission control rejected the request — the explicit
backpressure reply), and the stream responses STREAM-ACK (byte-credit
grant), STREAM-RESULT (one finished chunk) and STREAM-DONE (trailer).
The u64 ``request_id`` doubles as the correlation id: responses may
arrive out of order on a pipelined connection, and every frame of a
stream shares its id.  The wire version byte stays 1 — the stream
opcodes are a negotiated extension (see :func:`encode_ping_body`), so
every version-1 frame is byte-identical under both dialects.

The payload-equals-container guarantee: a COMPRESS result body *is* an
FPRZ container, byte-identical to what :func:`repro.compress` returns
for the same input, and a DECOMPRESS request body is exactly the
container ``fprz decompress`` would read from disk.  The wire adds
framing around the at-rest format, never a second encoding of the data.

See ``docs/SERVICE.md`` for the full byte-layout walkthrough.
"""

from __future__ import annotations

import json
import re
import struct
from dataclasses import dataclass, field

from repro.core import container as fmt
from repro.errors import (
    BoundsError,
    ChecksumError,
    CorruptDataError,
    DeadlineExceededError,
    FormatError,
    ProtocolError,
    QuotaExceededError,
    RemoteError,
    ServiceError,
    UnknownCodecError,
    UnsupportedDtypeError,
)

MAGIC = b"FPRW"
VERSION = 1

#: Default TCP port of ``fprz serve``.
DEFAULT_PORT = 9753

#: Default per-frame body limit (64 MiB).  Both sides enforce it on the
#: *declared* length before reading or allocating the body.
DEFAULT_MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct("<4sBBBBQI")
HEADER_SIZE = _HEADER.size  # 20 bytes

# Request opcodes.
OP_COMPRESS = 0x01
OP_DECOMPRESS = 0x02
OP_INSPECT = 0x03
OP_STATS = 0x04
OP_PING = 0x05
OP_STREAM_BEGIN = 0x06
OP_STREAM_DATA = 0x07
OP_STREAM_END = 0x08

# Response opcodes.
OP_RESULT = 0x80
OP_ERROR = 0x81
OP_BUSY = 0x82
OP_STREAM_ACK = 0x83
OP_STREAM_RESULT = 0x84
OP_STREAM_DONE = 0x85

REQUEST_OPCODES = {
    OP_COMPRESS: "compress",
    OP_DECOMPRESS: "decompress",
    OP_INSPECT: "inspect",
    OP_STATS: "stats",
    OP_PING: "ping",
    OP_STREAM_BEGIN: "stream-begin",
    OP_STREAM_DATA: "stream-data",
    OP_STREAM_END: "stream-end",
}
RESPONSE_OPCODES = {
    OP_RESULT: "result",
    OP_ERROR: "error",
    OP_BUSY: "busy",
    OP_STREAM_ACK: "stream-ack",
    OP_STREAM_RESULT: "stream-result",
    OP_STREAM_DONE: "stream-done",
}
OPCODE_NAMES = {**REQUEST_OPCODES, **RESPONSE_OPCODES}

#: Opcodes introduced by protocol feature "stream".  A version-1-only peer
#: rejects them with ERR_PROTOCOL, which is why clients negotiate via
#: :func:`encode_ping_body` before opening a stream.
STREAM_OPCODES = frozenset(
    {
        OP_STREAM_BEGIN,
        OP_STREAM_DATA,
        OP_STREAM_END,
        OP_STREAM_ACK,
        OP_STREAM_RESULT,
        OP_STREAM_DONE,
    }
)

#: Protocol features this library implements, advertised in PING bodies.
FEATURES = ("stream", "pipeline", "quota")

# Error codes carried in ERROR response bodies.  Each maps to the typed
# exception the client raises, so a server-side failure surfaces as the
# same error family an in-process call would have produced.
ERR_PROTOCOL = 1
ERR_FORMAT = 2
ERR_CORRUPT = 3
ERR_CHECKSUM = 4
ERR_BOUNDS = 5
ERR_UNSUPPORTED_DTYPE = 6
ERR_UNKNOWN_CODEC = 7
ERR_DEADLINE = 8
ERR_SHUTTING_DOWN = 9
ERR_INTERNAL = 10
ERR_QUOTA = 11

#: Most-derived classes first: ``error_code_for`` walks this in order.
_ERROR_CODES: tuple[tuple[type[Exception], int], ...] = (
    (ProtocolError, ERR_PROTOCOL),
    (DeadlineExceededError, ERR_DEADLINE),
    (QuotaExceededError, ERR_QUOTA),
    (ChecksumError, ERR_CHECKSUM),
    (BoundsError, ERR_BOUNDS),
    (CorruptDataError, ERR_CORRUPT),
    (FormatError, ERR_FORMAT),
    (UnsupportedDtypeError, ERR_UNSUPPORTED_DTYPE),
    (UnknownCodecError, ERR_UNKNOWN_CODEC),
)

_ERROR_CLASSES: dict[int, type[Exception]] = {
    ERR_PROTOCOL: ProtocolError,
    ERR_FORMAT: FormatError,
    ERR_CORRUPT: CorruptDataError,
    ERR_CHECKSUM: ChecksumError,
    ERR_BOUNDS: BoundsError,
    ERR_UNSUPPORTED_DTYPE: UnsupportedDtypeError,
    ERR_UNKNOWN_CODEC: UnknownCodecError,
    ERR_DEADLINE: DeadlineExceededError,
    ERR_SHUTTING_DOWN: ServiceError,
    ERR_INTERNAL: RemoteError,
    ERR_QUOTA: QuotaExceededError,
}

#: ndim sentinel meaning "no shape block" (raw-bytes payloads).
_NO_SHAPE = 0xFF

_DTYPE_ITEMSIZE = {fmt.DTYPE_BYTES: 1, fmt.DTYPE_F32: 4, fmt.DTYPE_F64: 8}


@dataclass(frozen=True)
class Frame:
    """One parsed wire frame."""

    opcode: int
    request_id: int
    body: bytes


def error_code_for(exc: BaseException) -> int:
    """The wire error code for a server-side exception."""
    for cls, code in _ERROR_CODES:
        if isinstance(exc, cls):
            return code
    return ERR_INTERNAL


#: QUOTA error messages carry their refill hint inline (the ERROR body
#: layout predates quotas and cannot grow a field without a version bump).
_QUOTA_HINT = re.compile(r"retry_after_ms=(\d+)")


def exception_for(code: int, message: str) -> Exception:
    """The typed exception a client raises for an ERROR response."""
    if code == ERR_QUOTA:
        hint = _QUOTA_HINT.search(message)
        return QuotaExceededError(
            message,
            retry_after_ms=int(hint.group(1)) if hint else None,
        )
    return _ERROR_CLASSES.get(code, ServiceError)(message)


def encode_frame(opcode: int, request_id: int, body: bytes = b"") -> bytes:
    """Assemble one wire frame."""
    if opcode not in OPCODE_NAMES:
        raise ValueError(f"unknown opcode 0x{opcode:02x}")
    return _HEADER.pack(MAGIC, VERSION, opcode, 0, 0, request_id, len(body)) + body


def parse_header(
    header: bytes, *, max_frame: int = DEFAULT_MAX_FRAME
) -> tuple[int, int, int]:
    """Validate a frame header; returns ``(opcode, request_id, body_len)``.

    Raises :class:`~repro.errors.ProtocolError` on any violation.  The
    exception carries ``request_id`` (0 when the field itself could not
    be trusted) so servers can echo it in the error reply.  The declared
    ``body_len`` is checked against ``max_frame`` here, before anything
    is allocated from it.
    """
    if len(header) < HEADER_SIZE:
        raise ProtocolError(
            f"truncated frame header: {len(header)} of {HEADER_SIZE} bytes"
        )
    magic, version, opcode, flags, reserved, request_id, body_len = (
        _HEADER.unpack_from(header, 0)
    )
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}; not an FPRW frame")
    if version != VERSION:
        exc = ProtocolError(
            f"unsupported wire protocol version {version} "
            f"(this library speaks version {VERSION})"
        )
        exc.request_id = request_id
        raise exc

    def fail(message: str) -> ProtocolError:
        exc = ProtocolError(message)
        exc.request_id = request_id
        return exc

    if flags != 0 or reserved != 0:
        raise fail(
            f"nonzero reserved frame fields (flags=0x{flags:02x}, "
            f"reserved=0x{reserved:02x})"
        )
    if opcode not in OPCODE_NAMES:
        raise fail(f"unknown opcode 0x{opcode:02x}")
    if body_len > max_frame:
        raise fail(
            f"declared frame body of {body_len} bytes exceeds the "
            f"{max_frame}-byte frame limit"
        )
    return opcode, request_id, body_len


def parse_frame(blob: bytes, *, max_frame: int = DEFAULT_MAX_FRAME) -> Frame:
    """Parse one complete frame from ``blob`` (header + exact body).

    The in-process entry point the frame fuzzer drives: identical
    validation to the server's streaming path, including the
    declared-length bound and the trailing-byte check.
    """
    opcode, request_id, body_len = parse_header(blob[:HEADER_SIZE], max_frame=max_frame)
    body = blob[HEADER_SIZE:]
    if len(body) != body_len:
        exc = ProtocolError(
            f"frame body length mismatch: header declares {body_len} bytes, "
            f"frame carries {len(body)}"
        )
        exc.request_id = request_id
        raise exc
    return Frame(opcode=opcode, request_id=request_id, body=bytes(body))


def _encode_shape(dtype_code: int, shape: tuple[int, ...] | None) -> bytes:
    if dtype_code not in _DTYPE_ITEMSIZE:
        raise ValueError(f"unknown dtype code {dtype_code}")
    if shape is None:
        return struct.pack("<BB", dtype_code, _NO_SHAPE)
    if len(shape) > fmt.MAX_NDIM:
        raise ValueError(f"shape rank {len(shape)} exceeds {fmt.MAX_NDIM}")
    return struct.pack("<BB", dtype_code, len(shape)) + b"".join(
        struct.pack("<Q", int(dim)) for dim in shape
    )


def _decode_shape(
    body: bytes, pos: int, what: str
) -> tuple[int, tuple[int, ...] | None, int]:
    """Parse the 2-byte dtype/ndim header plus dims; returns new ``pos``."""
    if pos + 2 > len(body):
        raise ProtocolError(f"truncated {what}: missing dtype/shape header")
    dtype_code, ndim = struct.unpack_from("<BB", body, pos)
    pos += 2
    if dtype_code not in _DTYPE_ITEMSIZE:
        raise ProtocolError(f"{what} carries unknown dtype code {dtype_code}")
    if ndim == _NO_SHAPE:
        return dtype_code, None, pos
    if ndim > fmt.MAX_NDIM:
        raise ProtocolError(
            f"{what} declares {ndim} dimensions (maximum {fmt.MAX_NDIM})"
        )
    if pos + 8 * ndim > len(body):
        raise ProtocolError(f"truncated {what}: shape block cut short")
    shape = struct.unpack_from(f"<{ndim}Q", body, pos)
    pos += 8 * ndim
    return dtype_code, tuple(shape), pos


def _check_geometry(
    dtype_code: int, shape: tuple[int, ...] | None, payload_len: int, what: str
) -> None:
    itemsize = _DTYPE_ITEMSIZE[dtype_code]
    if payload_len % itemsize:
        raise ProtocolError(
            f"{what} payload of {payload_len} bytes is not a multiple of "
            f"the {itemsize}-byte element size"
        )
    if shape is not None:
        elements = 1
        for dim in shape:
            elements *= dim
        if elements * itemsize != payload_len:
            raise ProtocolError(
                f"{what} shape {shape} x itemsize {itemsize} does not cover "
                f"the {payload_len}-byte payload"
            )


def encode_compress_body(
    payload: bytes,
    *,
    codec: str | None = None,
    dtype_code: int = fmt.DTYPE_BYTES,
    shape: tuple[int, ...] | None = None,
) -> bytes:
    """COMPRESS request body: codec name, dtype/shape header, raw data."""
    name = (codec or "").encode("ascii")
    if len(name) > 255:
        raise ValueError("codec name longer than 255 bytes")
    return (
        struct.pack("<B", len(name))
        + name
        + _encode_shape(dtype_code, shape)
        + payload
    )


def decode_compress_body(
    body: bytes,
) -> tuple[str | None, int, tuple[int, ...] | None, bytes]:
    """Parse a COMPRESS request body; raises ProtocolError when malformed."""
    if len(body) < 1:
        raise ProtocolError("empty COMPRESS body")
    name_len = body[0]
    pos = 1 + name_len
    if pos > len(body):
        raise ProtocolError("truncated COMPRESS body: codec name cut short")
    try:
        codec = body[1:pos].decode("ascii") if name_len else None
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"codec name is not ASCII: {exc}") from None
    dtype_code, shape, pos = _decode_shape(body, pos, "COMPRESS body")
    payload = bytes(body[pos:])
    _check_geometry(dtype_code, shape, len(payload), "COMPRESS body")
    return codec, dtype_code, shape, payload


def encode_array_body(
    payload: bytes, *, dtype_code: int, shape: tuple[int, ...] | None
) -> bytes:
    """DECOMPRESS result body: dtype/shape header, raw data."""
    return _encode_shape(dtype_code, shape) + payload


def decode_array_body(body: bytes) -> tuple[int, tuple[int, ...] | None, bytes]:
    """Parse a DECOMPRESS result body; raises ProtocolError when malformed."""
    dtype_code, shape, pos = _decode_shape(body, 0, "DECOMPRESS result")
    payload = bytes(body[pos:])
    _check_geometry(dtype_code, shape, len(payload), "DECOMPRESS result")
    return dtype_code, shape, payload


def encode_busy_body(retry_after_ms: int | None = None) -> bytes:
    """BUSY response body: optionally a u32 backoff hint in milliseconds.

    An empty body is the protocol-version-1 original and still valid —
    the hint is a backward-compatible extension, so old servers and new
    clients (and vice versa) interoperate.
    """
    if retry_after_ms is None:
        return b""
    if not 0 <= retry_after_ms <= 0xFFFFFFFF:
        raise ValueError(f"retry_after_ms {retry_after_ms} out of u32 range")
    return struct.pack("<I", retry_after_ms)


def decode_busy_body(body: bytes) -> int | None:
    """Parse a BUSY response body; empty means "no hint"."""
    if not body:
        return None
    if len(body) != 4:
        raise ProtocolError(
            f"BUSY body of {len(body)} bytes is neither empty nor a "
            f"4-byte retry_after_ms hint"
        )
    return struct.unpack("<I", body)[0]


def encode_error_body(code: int, message: str) -> bytes:
    """ERROR response body: u8 error code + UTF-8 message."""
    return struct.pack("<B", code) + message.encode("utf-8", "replace")


def decode_error_body(body: bytes) -> tuple[int, str]:
    """Parse an ERROR response body; tolerant of empty messages."""
    if len(body) < 1:
        raise ProtocolError("empty ERROR body")
    return body[0], body[1:].decode("utf-8", "replace")


# ---------------------------------------------------------------------------
# Feature negotiation (PING bodies)
# ---------------------------------------------------------------------------
#
# Protocol version 1 defined PING with an empty body, and v1 servers
# ignore whatever body arrives, replying with an empty RESULT.  That
# makes the PING body a free, fully backward-compatible negotiation
# channel: a v2 client sends a JSON feature list (plus its tenant name
# for quota accounting), a v2 server replies with its own JSON feature
# body, and an *empty* RESULT body identifies a v1 peer — the client
# then simply never emits a stream opcode on that connection.

#: Ceiling on a PING negotiation body; far beyond any legitimate feature
#: list, and small enough that a hostile body can't be an allocation bomb.
MAX_PING_BODY = 4096


def encode_ping_body(
    features: tuple[str, ...] = FEATURES,
    *,
    tenant: str | None = None,
    stream_window: int | None = None,
) -> bytes:
    """PING body: JSON feature advertisement (both directions).

    Servers additionally report ``stream_window`` (the per-connection
    byte credit a stream starts with) so clients can size their first
    burst without a round trip.
    """
    doc: dict[str, object] = {"features": list(features)}
    if tenant is not None:
        doc["tenant"] = tenant
    if stream_window is not None:
        doc["stream_window"] = int(stream_window)
    return json.dumps(doc, separators=(",", ":")).encode("utf-8")


def decode_ping_body(body: bytes) -> dict[str, object]:
    """Parse a PING negotiation body.

    An empty body (a v1 peer) decodes to ``{"features": []}``.  Malformed
    JSON raises :class:`~repro.errors.ProtocolError` — but note servers
    deliberately *don't* call this on untrusted request bodies failing
    closed; they fall back to v1 semantics instead (see
    ``CompressionServer._negotiate``), so an old client with a nonempty
    PING body is never rejected.
    """
    if not body:
        return {"features": []}
    if len(body) > MAX_PING_BODY:
        raise ProtocolError(
            f"PING body of {len(body)} bytes exceeds the {MAX_PING_BODY}-byte "
            f"negotiation limit"
        )
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"PING body is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError("PING body is not a JSON object")
    features = doc.get("features", [])
    if not isinstance(features, list) or not all(
        isinstance(f, str) for f in features
    ):
        raise ProtocolError("PING body 'features' is not a list of strings")
    tenant = doc.get("tenant")
    if tenant is not None and not isinstance(tenant, str):
        raise ProtocolError("PING body 'tenant' is not a string")
    window = doc.get("stream_window")
    if window is not None and (not isinstance(window, int) or window < 0):
        raise ProtocolError("PING body 'stream_window' is not a non-negative int")
    return doc


# ---------------------------------------------------------------------------
# Streamed transfers (STREAM-BEGIN / DATA / END requests,
#                     STREAM-ACK / RESULT / DONE responses)
# ---------------------------------------------------------------------------
#
# A stream is a sequence of frames sharing one u64 correlation id (the
# existing request_id field — streams and unary requests draw ids from
# the same space and may interleave freely on a pipelined connection):
#
#   client                          server
#   STREAM-BEGIN (mode, geometry,
#                 total_len)  --->
#                             <---  STREAM-ACK (initial byte credit)
#   STREAM-DATA (payload)     --->        | client may only have `credit`
#   STREAM-DATA (payload)     --->        | un-acknowledged bytes in
#                             <---  STREAM-ACK (credit replenished)
#                             <---  STREAM-RESULT (chunk_index, bytes)
#   ...                                   | results flow as chunks finish
#   STREAM-END ()             --->
#                             <---  STREAM-RESULT ...
#                             <---  STREAM-DONE (trailer)
#
# Flow control is credit-based: STREAM-ACK grants additional bytes of
# window, the client may never exceed its outstanding credit, and the
# server replenishes credit only as it *consumes* buffered bytes — so
# server memory for the stream is bounded by the configured window no
# matter how large the payload.  A window violation is a protocol error
# (must-reject: see the frame fuzzer's stream mutators).

#: STREAM-BEGIN modes.
STREAM_COMPRESS = 1
STREAM_DECOMPRESS = 2

_STREAM_MODES = {STREAM_COMPRESS: "compress", STREAM_DECOMPRESS: "decompress"}

_BEGIN_TAIL = struct.Struct("<Q")  # total_len
_ACK = struct.Struct("<I")  # credit grant in bytes
_RESULT_HEAD = struct.Struct("<I")  # chunk index


@dataclass(frozen=True)
class StreamBegin:
    """Parsed STREAM-BEGIN body."""

    mode: int
    codec: str | None
    dtype_code: int
    shape: tuple[int, ...] | None
    total_len: int


def encode_stream_begin(
    mode: int,
    *,
    total_len: int,
    codec: str | None = None,
    dtype_code: int = fmt.DTYPE_BYTES,
    shape: tuple[int, ...] | None = None,
) -> bytes:
    """STREAM-BEGIN body: mode, codec name, dtype/shape header, u64 total.

    ``total_len`` is the exact number of payload bytes the client will
    send as STREAM-DATA; the server validates geometry and plans chunking
    from it up front, and treats an END before ``total_len`` bytes as a
    truncated stream (protocol error).
    """
    if mode not in _STREAM_MODES:
        raise ValueError(f"unknown stream mode {mode}")
    if total_len < 0 or total_len > 0xFFFFFFFFFFFFFFFF:
        raise ValueError(f"total_len {total_len} out of u64 range")
    name = (codec or "").encode("ascii")
    if len(name) > 255:
        raise ValueError("codec name longer than 255 bytes")
    return (
        struct.pack("<BB", mode, len(name))
        + name
        + _encode_shape(dtype_code, shape)
        + _BEGIN_TAIL.pack(total_len)
    )


def decode_stream_begin(body: bytes) -> StreamBegin:
    """Parse a STREAM-BEGIN body; raises ProtocolError when malformed."""
    if len(body) < 2:
        raise ProtocolError("truncated STREAM-BEGIN body")
    mode, name_len = struct.unpack_from("<BB", body, 0)
    if mode not in _STREAM_MODES:
        raise ProtocolError(f"unknown stream mode {mode}")
    pos = 2 + name_len
    if pos > len(body):
        raise ProtocolError("truncated STREAM-BEGIN body: codec name cut short")
    try:
        codec = body[2:pos].decode("ascii") if name_len else None
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"codec name is not ASCII: {exc}") from None
    dtype_code, shape, pos = _decode_shape(body, pos, "STREAM-BEGIN body")
    if pos + _BEGIN_TAIL.size != len(body):
        raise ProtocolError(
            f"STREAM-BEGIN body length mismatch: {len(body) - pos} trailing "
            f"bytes where a u64 total_len was expected"
        )
    total_len = _BEGIN_TAIL.unpack_from(body, pos)[0]
    if mode == STREAM_COMPRESS:
        _check_geometry(dtype_code, shape, total_len, "STREAM-BEGIN body")
    return StreamBegin(
        mode=mode, codec=codec, dtype_code=dtype_code, shape=shape,
        total_len=total_len,
    )


def encode_stream_ack(credit: int) -> bytes:
    """STREAM-ACK body: u32 additional byte credit granted to the sender."""
    if not 0 <= credit <= 0xFFFFFFFF:
        raise ValueError(f"credit {credit} out of u32 range")
    return _ACK.pack(credit)


def decode_stream_ack(body: bytes) -> int:
    """Parse a STREAM-ACK body."""
    if len(body) != _ACK.size:
        raise ProtocolError(
            f"STREAM-ACK body of {len(body)} bytes is not a u32 credit grant"
        )
    return _ACK.unpack(body)[0]


def encode_stream_result(chunk_index: int, payload: bytes) -> bytes:
    """STREAM-RESULT body: u32 chunk index + that chunk's bytes."""
    if not 0 <= chunk_index <= 0xFFFFFFFF:
        raise ValueError(f"chunk index {chunk_index} out of u32 range")
    return _RESULT_HEAD.pack(chunk_index) + payload


def decode_stream_result(body: bytes) -> tuple[int, bytes]:
    """Parse a STREAM-RESULT body."""
    if len(body) < _RESULT_HEAD.size:
        raise ProtocolError("truncated STREAM-RESULT body: missing chunk index")
    return _RESULT_HEAD.unpack_from(body, 0)[0], bytes(body[_RESULT_HEAD.size:])


def encode_stream_trailer(
    dtype_code: int, shape: tuple[int, ...] | None, extra: bytes = b""
) -> bytes:
    """STREAM-DONE body: dtype/shape header plus mode-specific trailer bytes.

    For a compress stream ``extra`` is the container *prefix* (header +
    tables); prepended to the concatenated STREAM-RESULT payloads it
    reconstructs the exact container :func:`repro.compress` would have
    produced.  For a decompress stream ``extra`` is empty — the shape
    header alone tells the client how to view the decoded bytes.
    """
    return _encode_shape(dtype_code, shape) + extra


def decode_stream_trailer(body: bytes) -> tuple[int, tuple[int, ...] | None, bytes]:
    """Parse a STREAM-DONE body; returns ``(dtype_code, shape, extra)``."""
    dtype_code, shape, pos = _decode_shape(body, 0, "STREAM-DONE trailer")
    return dtype_code, shape, bytes(body[pos:])


# ---------------------------------------------------------------------------
# Stream ledger: the inbound-stream state machine
# ---------------------------------------------------------------------------


@dataclass
class StreamState:
    """Book-keeping for one active inbound stream."""

    begin: StreamBegin
    #: Bytes of credit granted to the peer and not yet used by DATA.
    credit: int
    #: Total DATA bytes received so far.
    received: int = 0
    #: DATA bytes buffered but not yet consumed by the processor.
    buffered: int = 0
    #: True once STREAM-END arrived.
    ended: bool = False
    #: Opaque per-stream attachment for the owner (server job state).
    attachment: object = field(default=None, repr=False)


class StreamLedger:
    """Validates the stream frames of one connection against the protocol.

    The single source of truth for what a well-behaved stream peer may
    send: the server drives its inbound validation through a ledger, and
    the frame fuzzer's stream mutators are probed against the *same*
    class — so every must-reject invariant the fuzzer checks is exactly
    the check production traffic hits.

    All violations raise :class:`~repro.errors.ProtocolError` with the
    offending correlation id attached as ``.request_id``.
    """

    def __init__(
        self,
        *,
        window: int,
        max_streams: int = 64,
        max_total: int | None = None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"stream window must be positive, got {window}")
        self.window = int(window)
        self.max_streams = int(max_streams)
        self.max_total = max_total
        self._streams: dict[int, StreamState] = {}

    def __len__(self) -> int:
        return len(self._streams)

    def __contains__(self, request_id: int) -> bool:
        return request_id in self._streams

    def get(self, request_id: int) -> StreamState:
        try:
            return self._streams[request_id]
        except KeyError:
            raise self._fail(
                request_id, f"unknown stream correlation id {request_id}"
            ) from None

    @staticmethod
    def _fail(request_id: int, message: str) -> ProtocolError:
        exc = ProtocolError(message)
        exc.request_id = request_id
        return exc

    def on_begin(self, request_id: int, body: bytes) -> StreamState:
        """Validate a STREAM-BEGIN frame and open the stream."""
        if request_id in self._streams:
            raise self._fail(
                request_id,
                f"STREAM-BEGIN for correlation id {request_id} which already "
                f"names an open stream (overlapping stream ids)",
            )
        if len(self._streams) >= self.max_streams:
            raise self._fail(
                request_id,
                f"connection already carries {len(self._streams)} open streams "
                f"(maximum {self.max_streams})",
            )
        begin = decode_stream_begin(body)
        if self.max_total is not None and begin.total_len > self.max_total:
            raise self._fail(
                request_id,
                f"declared stream of {begin.total_len} bytes exceeds the "
                f"{self.max_total}-byte stream limit",
            )
        state = StreamState(begin=begin, credit=min(self.window, begin.total_len))
        self._streams[request_id] = state
        return state

    def on_data(self, request_id: int, n_bytes: int) -> StreamState:
        """Validate a STREAM-DATA frame: known id, open, within credit."""
        if request_id not in self._streams:
            raise self._fail(
                request_id,
                f"STREAM-DATA for correlation id {request_id} with no "
                f"preceding STREAM-BEGIN",
            )
        state = self._streams[request_id]
        if state.ended:
            raise self._fail(
                request_id, f"STREAM-DATA after STREAM-END on stream {request_id}"
            )
        if n_bytes > state.credit:
            raise self._fail(
                request_id,
                f"stream {request_id} window violation: {n_bytes}-byte "
                f"STREAM-DATA against {state.credit} bytes of credit",
            )
        if state.received + n_bytes > state.begin.total_len:
            raise self._fail(
                request_id,
                f"stream {request_id} overran its declared length: "
                f"{state.received + n_bytes} of {state.begin.total_len} bytes",
            )
        state.credit -= n_bytes
        state.received += n_bytes
        state.buffered += n_bytes
        return state

    def on_end(self, request_id: int) -> StreamState:
        """Validate a STREAM-END frame: known id, fully delivered."""
        if request_id not in self._streams:
            raise self._fail(
                request_id,
                f"STREAM-END for unknown stream correlation id {request_id}",
            )
        state = self._streams[request_id]
        if state.ended:
            raise self._fail(
                request_id, f"duplicate STREAM-END on stream {request_id}"
            )
        if state.received != state.begin.total_len:
            raise self._fail(
                request_id,
                f"truncated stream {request_id}: STREAM-END after "
                f"{state.received} of {state.begin.total_len} declared bytes",
            )
        state.ended = True
        return state

    def consume(self, request_id: int, n_bytes: int) -> int:
        """Record the processor consuming buffered bytes; returns the
        credit that may now be granted back to the peer (0 when the
        stream's remaining bytes are already fully covered)."""
        state = self.get(request_id)
        state.buffered = max(0, state.buffered - n_bytes)
        remaining = state.begin.total_len - state.received
        grant = min(self.window - state.buffered - state.credit, remaining - state.credit)
        if grant <= 0:
            return 0
        state.credit += grant
        return grant

    def close(self, request_id: int) -> None:
        """Forget a stream (completed or aborted)."""
        self._streams.pop(request_id, None)
