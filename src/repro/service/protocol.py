"""The FPRW framed wire protocol spoken by ``fprz serve``.

Every message between client and server is one length-prefixed frame::

    =========== ===== ====================================================
    field       bytes meaning
    =========== ===== ====================================================
    magic           4 ``b"FPRW"``
    version         1 wire protocol version (currently 1)
    opcode          1 request or response opcode (tables below)
    flags           1 reserved, must be 0
    reserved        1 reserved, must be 0
    request_id      8 u64 chosen by the client, echoed in the response
    body_len        4 u32 length of the body that follows
    body            v ``body_len`` bytes, layout per opcode
    =========== ===== ====================================================

All integers are little-endian, matching the FPRZ container.  The
``body_len`` field is validated against the negotiated frame limit
*before* any buffer is sized from it, so a hostile frame fails with a
typed :class:`~repro.errors.ProtocolError`, never an allocation bomb.

Request opcodes: COMPRESS, DECOMPRESS, INSPECT, STATS, PING.  Responses
are RESULT (success), ERROR (typed failure, body = error code + UTF-8
message), and BUSY (admission control rejected the request — the
explicit-backpressure reply).

The payload-equals-container guarantee: a COMPRESS result body *is* an
FPRZ container, byte-identical to what :func:`repro.compress` returns
for the same input, and a DECOMPRESS request body is exactly the
container ``fprz decompress`` would read from disk.  The wire adds
framing around the at-rest format, never a second encoding of the data.

See ``docs/SERVICE.md`` for the full byte-layout walkthrough.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core import container as fmt
from repro.errors import (
    BoundsError,
    ChecksumError,
    CorruptDataError,
    DeadlineExceededError,
    FormatError,
    ProtocolError,
    RemoteError,
    ServiceError,
    UnknownCodecError,
    UnsupportedDtypeError,
)

MAGIC = b"FPRW"
VERSION = 1

#: Default TCP port of ``fprz serve``.
DEFAULT_PORT = 9753

#: Default per-frame body limit (64 MiB).  Both sides enforce it on the
#: *declared* length before reading or allocating the body.
DEFAULT_MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct("<4sBBBBQI")
HEADER_SIZE = _HEADER.size  # 20 bytes

# Request opcodes.
OP_COMPRESS = 0x01
OP_DECOMPRESS = 0x02
OP_INSPECT = 0x03
OP_STATS = 0x04
OP_PING = 0x05

# Response opcodes.
OP_RESULT = 0x80
OP_ERROR = 0x81
OP_BUSY = 0x82

REQUEST_OPCODES = {
    OP_COMPRESS: "compress",
    OP_DECOMPRESS: "decompress",
    OP_INSPECT: "inspect",
    OP_STATS: "stats",
    OP_PING: "ping",
}
RESPONSE_OPCODES = {OP_RESULT: "result", OP_ERROR: "error", OP_BUSY: "busy"}
OPCODE_NAMES = {**REQUEST_OPCODES, **RESPONSE_OPCODES}

# Error codes carried in ERROR response bodies.  Each maps to the typed
# exception the client raises, so a server-side failure surfaces as the
# same error family an in-process call would have produced.
ERR_PROTOCOL = 1
ERR_FORMAT = 2
ERR_CORRUPT = 3
ERR_CHECKSUM = 4
ERR_BOUNDS = 5
ERR_UNSUPPORTED_DTYPE = 6
ERR_UNKNOWN_CODEC = 7
ERR_DEADLINE = 8
ERR_SHUTTING_DOWN = 9
ERR_INTERNAL = 10

#: Most-derived classes first: ``error_code_for`` walks this in order.
_ERROR_CODES: tuple[tuple[type[Exception], int], ...] = (
    (ProtocolError, ERR_PROTOCOL),
    (DeadlineExceededError, ERR_DEADLINE),
    (ChecksumError, ERR_CHECKSUM),
    (BoundsError, ERR_BOUNDS),
    (CorruptDataError, ERR_CORRUPT),
    (FormatError, ERR_FORMAT),
    (UnsupportedDtypeError, ERR_UNSUPPORTED_DTYPE),
    (UnknownCodecError, ERR_UNKNOWN_CODEC),
)

_ERROR_CLASSES: dict[int, type[Exception]] = {
    ERR_PROTOCOL: ProtocolError,
    ERR_FORMAT: FormatError,
    ERR_CORRUPT: CorruptDataError,
    ERR_CHECKSUM: ChecksumError,
    ERR_BOUNDS: BoundsError,
    ERR_UNSUPPORTED_DTYPE: UnsupportedDtypeError,
    ERR_UNKNOWN_CODEC: UnknownCodecError,
    ERR_DEADLINE: DeadlineExceededError,
    ERR_SHUTTING_DOWN: ServiceError,
    ERR_INTERNAL: RemoteError,
}

#: ndim sentinel meaning "no shape block" (raw-bytes payloads).
_NO_SHAPE = 0xFF

_DTYPE_ITEMSIZE = {fmt.DTYPE_BYTES: 1, fmt.DTYPE_F32: 4, fmt.DTYPE_F64: 8}


@dataclass(frozen=True)
class Frame:
    """One parsed wire frame."""

    opcode: int
    request_id: int
    body: bytes


def error_code_for(exc: BaseException) -> int:
    """The wire error code for a server-side exception."""
    for cls, code in _ERROR_CODES:
        if isinstance(exc, cls):
            return code
    return ERR_INTERNAL


def exception_for(code: int, message: str) -> Exception:
    """The typed exception a client raises for an ERROR response."""
    return _ERROR_CLASSES.get(code, ServiceError)(message)


def encode_frame(opcode: int, request_id: int, body: bytes = b"") -> bytes:
    """Assemble one wire frame."""
    if opcode not in OPCODE_NAMES:
        raise ValueError(f"unknown opcode 0x{opcode:02x}")
    return _HEADER.pack(MAGIC, VERSION, opcode, 0, 0, request_id, len(body)) + body


def parse_header(
    header: bytes, *, max_frame: int = DEFAULT_MAX_FRAME
) -> tuple[int, int, int]:
    """Validate a frame header; returns ``(opcode, request_id, body_len)``.

    Raises :class:`~repro.errors.ProtocolError` on any violation.  The
    exception carries ``request_id`` (0 when the field itself could not
    be trusted) so servers can echo it in the error reply.  The declared
    ``body_len`` is checked against ``max_frame`` here, before anything
    is allocated from it.
    """
    if len(header) < HEADER_SIZE:
        raise ProtocolError(
            f"truncated frame header: {len(header)} of {HEADER_SIZE} bytes"
        )
    magic, version, opcode, flags, reserved, request_id, body_len = (
        _HEADER.unpack_from(header, 0)
    )
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}; not an FPRW frame")
    if version != VERSION:
        exc = ProtocolError(
            f"unsupported wire protocol version {version} "
            f"(this library speaks version {VERSION})"
        )
        exc.request_id = request_id
        raise exc

    def fail(message: str) -> ProtocolError:
        exc = ProtocolError(message)
        exc.request_id = request_id
        return exc

    if flags != 0 or reserved != 0:
        raise fail(
            f"nonzero reserved frame fields (flags=0x{flags:02x}, "
            f"reserved=0x{reserved:02x})"
        )
    if opcode not in OPCODE_NAMES:
        raise fail(f"unknown opcode 0x{opcode:02x}")
    if body_len > max_frame:
        raise fail(
            f"declared frame body of {body_len} bytes exceeds the "
            f"{max_frame}-byte frame limit"
        )
    return opcode, request_id, body_len


def parse_frame(blob: bytes, *, max_frame: int = DEFAULT_MAX_FRAME) -> Frame:
    """Parse one complete frame from ``blob`` (header + exact body).

    The in-process entry point the frame fuzzer drives: identical
    validation to the server's streaming path, including the
    declared-length bound and the trailing-byte check.
    """
    opcode, request_id, body_len = parse_header(blob[:HEADER_SIZE], max_frame=max_frame)
    body = blob[HEADER_SIZE:]
    if len(body) != body_len:
        exc = ProtocolError(
            f"frame body length mismatch: header declares {body_len} bytes, "
            f"frame carries {len(body)}"
        )
        exc.request_id = request_id
        raise exc
    return Frame(opcode=opcode, request_id=request_id, body=bytes(body))


def _encode_shape(dtype_code: int, shape: tuple[int, ...] | None) -> bytes:
    if dtype_code not in _DTYPE_ITEMSIZE:
        raise ValueError(f"unknown dtype code {dtype_code}")
    if shape is None:
        return struct.pack("<BB", dtype_code, _NO_SHAPE)
    if len(shape) > fmt.MAX_NDIM:
        raise ValueError(f"shape rank {len(shape)} exceeds {fmt.MAX_NDIM}")
    return struct.pack("<BB", dtype_code, len(shape)) + b"".join(
        struct.pack("<Q", int(dim)) for dim in shape
    )


def _decode_shape(
    body: bytes, pos: int, what: str
) -> tuple[int, tuple[int, ...] | None, int]:
    """Parse the 2-byte dtype/ndim header plus dims; returns new ``pos``."""
    if pos + 2 > len(body):
        raise ProtocolError(f"truncated {what}: missing dtype/shape header")
    dtype_code, ndim = struct.unpack_from("<BB", body, pos)
    pos += 2
    if dtype_code not in _DTYPE_ITEMSIZE:
        raise ProtocolError(f"{what} carries unknown dtype code {dtype_code}")
    if ndim == _NO_SHAPE:
        return dtype_code, None, pos
    if ndim > fmt.MAX_NDIM:
        raise ProtocolError(
            f"{what} declares {ndim} dimensions (maximum {fmt.MAX_NDIM})"
        )
    if pos + 8 * ndim > len(body):
        raise ProtocolError(f"truncated {what}: shape block cut short")
    shape = struct.unpack_from(f"<{ndim}Q", body, pos)
    pos += 8 * ndim
    return dtype_code, tuple(shape), pos


def _check_geometry(
    dtype_code: int, shape: tuple[int, ...] | None, payload_len: int, what: str
) -> None:
    itemsize = _DTYPE_ITEMSIZE[dtype_code]
    if payload_len % itemsize:
        raise ProtocolError(
            f"{what} payload of {payload_len} bytes is not a multiple of "
            f"the {itemsize}-byte element size"
        )
    if shape is not None:
        elements = 1
        for dim in shape:
            elements *= dim
        if elements * itemsize != payload_len:
            raise ProtocolError(
                f"{what} shape {shape} x itemsize {itemsize} does not cover "
                f"the {payload_len}-byte payload"
            )


def encode_compress_body(
    payload: bytes,
    *,
    codec: str | None = None,
    dtype_code: int = fmt.DTYPE_BYTES,
    shape: tuple[int, ...] | None = None,
) -> bytes:
    """COMPRESS request body: codec name, dtype/shape header, raw data."""
    name = (codec or "").encode("ascii")
    if len(name) > 255:
        raise ValueError("codec name longer than 255 bytes")
    return (
        struct.pack("<B", len(name))
        + name
        + _encode_shape(dtype_code, shape)
        + payload
    )


def decode_compress_body(
    body: bytes,
) -> tuple[str | None, int, tuple[int, ...] | None, bytes]:
    """Parse a COMPRESS request body; raises ProtocolError when malformed."""
    if len(body) < 1:
        raise ProtocolError("empty COMPRESS body")
    name_len = body[0]
    pos = 1 + name_len
    if pos > len(body):
        raise ProtocolError("truncated COMPRESS body: codec name cut short")
    try:
        codec = body[1:pos].decode("ascii") if name_len else None
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"codec name is not ASCII: {exc}") from None
    dtype_code, shape, pos = _decode_shape(body, pos, "COMPRESS body")
    payload = bytes(body[pos:])
    _check_geometry(dtype_code, shape, len(payload), "COMPRESS body")
    return codec, dtype_code, shape, payload


def encode_array_body(
    payload: bytes, *, dtype_code: int, shape: tuple[int, ...] | None
) -> bytes:
    """DECOMPRESS result body: dtype/shape header, raw data."""
    return _encode_shape(dtype_code, shape) + payload


def decode_array_body(body: bytes) -> tuple[int, tuple[int, ...] | None, bytes]:
    """Parse a DECOMPRESS result body; raises ProtocolError when malformed."""
    dtype_code, shape, pos = _decode_shape(body, 0, "DECOMPRESS result")
    payload = bytes(body[pos:])
    _check_geometry(dtype_code, shape, len(payload), "DECOMPRESS result")
    return dtype_code, shape, payload


def encode_busy_body(retry_after_ms: int | None = None) -> bytes:
    """BUSY response body: optionally a u32 backoff hint in milliseconds.

    An empty body is the protocol-version-1 original and still valid —
    the hint is a backward-compatible extension, so old servers and new
    clients (and vice versa) interoperate.
    """
    if retry_after_ms is None:
        return b""
    if not 0 <= retry_after_ms <= 0xFFFFFFFF:
        raise ValueError(f"retry_after_ms {retry_after_ms} out of u32 range")
    return struct.pack("<I", retry_after_ms)


def decode_busy_body(body: bytes) -> int | None:
    """Parse a BUSY response body; empty means "no hint"."""
    if not body:
        return None
    if len(body) != 4:
        raise ProtocolError(
            f"BUSY body of {len(body)} bytes is neither empty nor a "
            f"4-byte retry_after_ms hint"
        )
    return struct.unpack("<I", body)[0]


def encode_error_body(code: int, message: str) -> bytes:
    """ERROR response body: u8 error code + UTF-8 message."""
    return struct.pack("<B", code) + message.encode("utf-8", "replace")


def decode_error_body(body: bytes) -> tuple[int, str]:
    """Parse an ERROR response body; tolerant of empty messages."""
    if len(body) < 1:
        raise ProtocolError("empty ERROR body")
    return body[0], body[1:].decode("utf-8", "replace")
