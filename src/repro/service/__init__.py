"""The serving layer: a framed async compression service.

* :mod:`repro.service.protocol` — the FPRW wire frames (magic, version,
  request id, opcode, body) and their typed validation.
* :mod:`repro.service.server` — the asyncio daemon behind ``fprz serve``:
  bounded admission queue with BUSY backpressure, thread-pool codec
  offload, per-request deadlines, graceful drain.
* :mod:`repro.service.client` — the blocking client behind
  ``fprz remote`` and :func:`repro.api.connect`.
* :mod:`repro.service.router` — the shard router behind ``fprz route``:
  consistent hashing across backends, health-checked failover, per-
  backend circuit breakers, load shedding.
* :mod:`repro.service.resilience` — retry policy (capped backoff, full
  jitter, budgets) and :class:`ResilientClient`, which survives dead
  connections and fails over across an address list.
* :mod:`repro.service.faults` — the deterministic seeded chaos proxy
  behind ``fprz chaos``.
* :mod:`repro.service.metrics` — the live counters/gauges/histograms
  served by the STATS opcode and ``fprz stats``.

The wire payloads are FPRZ containers — the exact bytes the offline
tools read and write — so the service adds framing, scheduling, and
observability around the existing format, never a second encoding.
Protocol v2 adds chunk-streamed transfers (bounded server memory via a
credit window), request pipelining over u64 correlation ids, and
per-tenant admission quotas — all negotiated over PING, so v1 peers
keep working byte-identically.
"""

from repro.core.incremental import StreamingCompressor, StreamingDecompressor
from repro.service.client import ServiceClient
from repro.service.faults import ChaosConfig, ChaosProxy, ChaosProxyThread
from repro.service.metrics import MetricsRegistry
from repro.service.protocol import DEFAULT_MAX_FRAME, DEFAULT_PORT, FEATURES
from repro.service.resilience import ResilientClient, RetryPolicy
from repro.service.router import (
    DEFAULT_ROUTER_PORT,
    RouterConfig,
    RouterThread,
    ShardRouter,
)
from repro.service.server import (
    CompressionServer,
    ServerThread,
    ServiceConfig,
    wait_for_port,
)

__all__ = [
    "ChaosConfig",
    "ChaosProxy",
    "ChaosProxyThread",
    "CompressionServer",
    "DEFAULT_MAX_FRAME",
    "DEFAULT_PORT",
    "DEFAULT_ROUTER_PORT",
    "FEATURES",
    "MetricsRegistry",
    "ResilientClient",
    "RetryPolicy",
    "RouterConfig",
    "RouterThread",
    "ServerThread",
    "ServiceClient",
    "ServiceConfig",
    "ShardRouter",
    "StreamingCompressor",
    "StreamingDecompressor",
    "wait_for_port",
]
