"""The shard router: one front process over N compression backends.

``fprz route`` speaks the same FPRW wire protocol as ``fprz serve`` —
clients cannot tell a router from a server — and forwards codec work
across a fleet of backends:

* **Consistent hashing**: each request is placed on a hash ring
  (``vnodes`` points per backend, blake2b) keyed by its body bytes, so
  identical payloads land on the same backend (warm caches, stable
  attribution) and adding or removing a backend only remaps ``1/N`` of
  the keyspace.
* **Health checks**: a background loop PINGs every backend each
  ``health_interval`` seconds.  Failures eject a backend from routing;
  recovery readmits it — both through the circuit breaker, so traffic
  and health probes share one state machine.
* **Circuit breakers**: per backend, CLOSED → OPEN after
  ``failure_threshold`` consecutive failures, OPEN → HALF_OPEN after
  ``open_seconds``, HALF_OPEN → CLOSED on one successful probe (or back
  to OPEN on failure).  An open breaker short-circuits dispatch — no
  connection attempt, no timeout wait.
* **Failover**: requests are idempotent (pure functions of their body),
  so a transport failure re-dispatches to the next backend on the ring,
  up to ``dispatch_attempts`` distinct backends.  A BUSY backend is
  skipped the same way; only when every candidate is busy does the
  client see BUSY.
* **Load shedding**: past ``inflight_high_water`` globally in-flight
  requests the router answers BUSY immediately with a
  ``retry_after_ms`` hint — explicit backpressure at the front door,
  before any backend work is queued.

Every decision lands in the shared
:class:`~repro.service.metrics.MetricsRegistry` (served by STATS and
``fprz stats``): per-backend request outcomes, failovers, sheds,
breaker transitions, and live health gauges.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import itertools
import json
import signal
import threading
import time
import zlib
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import ProtocolError, ReproError, ServiceError
from repro.service import protocol as proto
from repro.service.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.service.resilience import format_address, parse_address

#: Default TCP port of ``fprz route`` (one below the server's).
DEFAULT_ROUTER_PORT = 9752

# Circuit-breaker states (also the value of the ``breaker_state`` gauge).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"
_BREAKER_GAUGE = {BREAKER_CLOSED: 0, BREAKER_OPEN: 1, BREAKER_HALF_OPEN: 2}


@dataclass(frozen=True)
class RouterConfig:
    """Tunables of one :class:`ShardRouter`."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it back from ``router.port``).
    port: int = DEFAULT_ROUTER_PORT
    #: Backend addresses as ``(host, port)`` tuples or ``"host:port"`` strings.
    backends: tuple = ()
    #: Per-frame body limit (same meaning as the server's).
    max_frame: int = proto.DEFAULT_MAX_FRAME
    #: Seconds between background PING health checks.
    health_interval: float = 0.5
    #: Deadline for one forwarded backend exchange (connect + reply).
    backend_timeout: float = 30.0
    #: Deadline for the health-check PING exchange.
    health_timeout: float = 2.0
    #: Consecutive failures that open a backend's circuit breaker.
    failure_threshold: int = 3
    #: Seconds an open breaker waits before allowing a half-open probe.
    open_seconds: float = 1.0
    #: Distinct backends tried per request before giving up.
    dispatch_attempts: int = 3
    #: Global in-flight high-water mark; past it, requests are shed.
    inflight_high_water: int = 128
    #: Backoff hint (ms) carried in shed/all-busy BUSY responses.
    busy_retry_ms: int = 100
    #: Hash-ring points per backend.
    vnodes: int = 32
    #: Idle pooled connections kept per backend.
    pool_size: int = 4
    #: Bytes of stream frames the router keeps buffered for replay.  A
    #: stream whose backend fails *before any response frame reached the
    #: client* is replayed — BEGIN plus any buffered DATA — onto the
    #: next ring candidate; once the buffer overflows (or a response has
    #: been relayed) failover is off and a failure surfaces instead.
    stream_replay_buffer: int = 1024 * 1024


class CircuitBreaker:
    """CLOSED → OPEN → HALF_OPEN per-backend failure gate.

    The ``clock`` is injectable so tests can step time instead of
    sleeping through ``open_seconds``.
    """

    def __init__(
        self,
        threshold: int,
        open_seconds: float,
        *,
        clock=time.monotonic,
        on_transition=None,
    ) -> None:
        self.threshold = max(int(threshold), 1)
        self.open_seconds = open_seconds
        self._clock = clock
        self._on_transition = on_transition
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def failures(self) -> int:
        return self._failures

    @property
    def state(self) -> str:
        """Current state; an elapsed OPEN window reads as HALF_OPEN."""
        if (
            self._state == BREAKER_OPEN
            and self._clock() - self._opened_at >= self.open_seconds
        ):
            self._transition(BREAKER_HALF_OPEN)
        return self._state

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        if state == BREAKER_OPEN:
            self._opened_at = self._clock()
        if self._on_transition is not None:
            self._on_transition(state)

    def allows(self) -> bool:
        """May a request be dispatched right now?

        CLOSED always; OPEN never; HALF_OPEN admits probes (the caller
        is expected to dispatch sparingly — every outcome feeds back).
        """
        return self.state != BREAKER_OPEN

    def record_success(self) -> None:
        self._failures = 0
        self._transition(BREAKER_CLOSED)

    def record_failure(self) -> None:
        self._failures += 1
        if self.state == BREAKER_HALF_OPEN:
            # The probe failed: re-arm the full open window.
            self._transition(BREAKER_OPEN)
        elif self._state == BREAKER_CLOSED and self._failures >= self.threshold:
            self._transition(BREAKER_OPEN)


class _BackendFailure(Exception):
    """One failed backend exchange (transport, timeout, or draining)."""


class _Backend:
    """Routing state for one backend address."""

    def __init__(self, addr: tuple[str, int], breaker: CircuitBreaker) -> None:
        self.addr = addr
        self.label = format_address(addr)
        self.breaker = breaker
        self.pool: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self.inflight = 0


@dataclass(eq=False)
class _ClientConn:
    """Per-client-connection state (mirrors the server's)."""

    writer: asyncio.StreamWriter
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    #: Quota identity from PING negotiation, forwarded per stream.
    tenant: str | None = None
    #: Live stream relays by client correlation id.
    streams: dict = field(default_factory=dict)
    #: Ids of failed streams whose in-flight frames are tolerated.
    dead_streams: set = field(default_factory=set)


class _StreamRelay:
    """Forwarding state for one client stream (one correlation id).

    Client frames land in an append-only frame log (BEGIN first); the
    relay task forwards them to the backend in order, tracking its
    position in ``forwarded``.  Until a response frame has been relayed
    to the client the whole log is retained (bounded by
    ``stream_replay_buffer``), so a failed backend attempt can be
    replayed from index 0 on another backend — indistinguishable from a
    first attempt as long as the client has observed nothing.  Once
    replay is off (a response was relayed, or the log outgrew the cap)
    the forwarded prefix is trimmed, keeping router memory bounded by
    the uplink backlog — itself bounded by the backend's credit window,
    since the client only sends within granted credit.
    """

    __slots__ = (
        "begin_body", "_frames", "_base", "log_bytes", "buffer_ok",
        "forwarded", "responded", "saw_end", "task", "wakeup",
    )

    def __init__(self, begin_body: bytes) -> None:
        self.begin_body = begin_body
        self._frames: list[tuple[int, bytes]] = [
            (proto.OP_STREAM_BEGIN, begin_body)
        ]
        self._base = 0  # logical index of _frames[0]
        self.log_bytes = len(begin_body)
        self.buffer_ok = True
        self.forwarded = 0  # logical index the active attempt sends next
        self.responded = False
        self.saw_end = False
        self.task: asyncio.Task | None = None
        self.wakeup = asyncio.Event()

    def __len__(self) -> int:
        return self._base + len(self._frames)

    def frame(self, index: int) -> tuple[int, bytes]:
        return self._frames[index - self._base]

    def push(self, opcode: int, body: bytes, *, replay_cap: int) -> None:
        """Append one client frame to the log and wake the relay task."""
        if opcode == proto.OP_STREAM_END:
            self.saw_end = True
        self._frames.append((opcode, body))
        self.log_bytes += len(body)
        if self.buffer_ok and self.log_bytes > replay_cap:
            self.buffer_ok = False
        self.trim()
        self.wakeup.set()

    def mark_responded(self) -> None:
        self.responded = True
        self.trim()

    def trim(self) -> None:
        """Drop forwarded frames once replay is no longer possible."""
        if self.replayable:
            return
        drop = self.forwarded - self._base
        if drop > 0:
            for _, body in self._frames[:drop]:
                self.log_bytes -= len(body)
            del self._frames[:drop]
            self._base += drop

    @property
    def replayable(self) -> bool:
        return self.buffer_ok and not self.responded


class ShardRouter:
    """A consistent-hashing, health-checked FPRW front tier."""

    def __init__(
        self,
        config: RouterConfig,
        *,
        registry: MetricsRegistry | None = None,
        clock=time.monotonic,
    ) -> None:
        if not config.backends:
            raise ServiceError("ShardRouter needs at least one backend")
        self.config = config
        self.registry = registry or MetricsRegistry()
        self.port: int | None = None
        self._clock = clock
        self._backends = [
            _Backend(parse_address(spec), self._make_breaker(spec))
            for spec in config.backends
        ]
        self._ring = self._build_ring()
        self._server: asyncio.base_events.Server | None = None
        self._conns: set[_ClientConn] = set()
        self._jobs: set[asyncio.Task] = set()
        self._health_task: asyncio.Task | None = None
        self._inflight = 0
        self._draining = False
        self._stopped: asyncio.Event | None = None
        self._backend_rids = itertools.count(1)
        self._started_at = 0.0

    def _make_breaker(self, spec) -> CircuitBreaker:
        label = format_address(parse_address(spec))

        def on_transition(state: str) -> None:
            self.registry.counter(
                "breaker_transitions_total", backend=label, to=state
            ).inc()
            self.registry.gauge("breaker_state", backend=label).set(
                _BREAKER_GAUGE[state]
            )
            self.registry.gauge("backend_healthy", backend=label).set(
                1 if state == BREAKER_CLOSED else 0
            )

        return CircuitBreaker(
            self.config.failure_threshold,
            self.config.open_seconds,
            clock=self._clock,
            on_transition=on_transition,
        )

    # -- hash ring ----------------------------------------------------

    def _build_ring(self) -> list[tuple[int, int]]:
        ring: list[tuple[int, int]] = []
        for index, backend in enumerate(self._backends):
            for v in range(self.config.vnodes):
                digest = hashlib.blake2b(
                    f"{backend.label}/{v}".encode(), digest_size=8
                ).digest()
                ring.append((int.from_bytes(digest, "big"), index))
        ring.sort()
        return ring

    def _candidates(self, body: bytes) -> list[_Backend]:
        """Backends in ring order for this request body, deduplicated."""
        key = zlib.crc32(body) * 0x9E3779B97F4A7C15 & (1 << 64) - 1
        start = bisect_right(self._ring, (key, len(self._backends)))
        seen: set[int] = set()
        ordered: list[_Backend] = []
        for k in range(len(self._ring)):
            _, index = self._ring[(start + k) % len(self._ring)]
            if index not in seen:
                seen.add(index)
                ordered.append(self._backends[index])
                if len(ordered) == len(self._backends):
                    break
        return ordered

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        cfg = self.config
        self._stopped = asyncio.Event()
        for backend in self._backends:
            # Until the first health check says otherwise, a backend is
            # assumed healthy (breaker starts CLOSED).
            self.registry.gauge("backend_healthy", backend=backend.label).set(1)
            self.registry.gauge("breaker_state", backend=backend.label).set(0)
        self._server = await asyncio.start_server(
            self._handle_conn, cfg.host, cfg.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = asyncio.ensure_future(self._health_loop())
        self._started_at = self._clock()

    async def stop(self, drain: bool = True) -> None:
        if self._stopped is None or self._stopped.is_set():
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
        if drain and self._jobs:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*tuple(self._jobs), return_exceptions=True),
                    self.config.backend_timeout,
                )
        for task in tuple(self._jobs):
            task.cancel()
        for conn in tuple(self._conns):
            conn.writer.close()
        for backend in self._backends:
            while backend.pool:
                _, writer = backend.pool.pop()
                writer.close()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, "router not started"
        await self._stopped.wait()

    async def run(self, *, install_signals: bool = True, on_started=None) -> None:
        await self.start()
        if on_started is not None:
            on_started()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(
                        sig, lambda: asyncio.ensure_future(self.stop())
                    )
        await self.wait_stopped()

    # -- health checks ------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.gather(
                *(self._check_backend(b) for b in self._backends),
                return_exceptions=True,
            )
            await asyncio.sleep(self.config.health_interval)

    async def _check_backend(self, backend: _Backend) -> None:
        if backend.breaker.state == BREAKER_OPEN:
            return  # wait out the open window; probing early is pointless
        try:
            opcode, body = await self._exchange(
                backend, proto.OP_PING, b"", timeout=self.config.health_timeout
            )
            if opcode != proto.OP_RESULT:
                raise _BackendFailure(f"PING answered 0x{opcode:02x}")
        except _BackendFailure:
            backend.breaker.record_failure()
            self.registry.counter(
                "health_checks_total", backend=backend.label, outcome="fail"
            ).inc()
        else:
            backend.breaker.record_success()
            self.registry.counter(
                "health_checks_total", backend=backend.label, outcome="ok"
            ).inc()

    # -- backend exchange ---------------------------------------------

    async def _acquire(
        self, backend: _Backend
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while backend.pool:
            reader, writer = backend.pool.pop()
            if writer.is_closing():
                writer.close()
                continue
            return reader, writer
        host, port = backend.addr
        try:
            return await asyncio.open_connection(host, port)
        except OSError as exc:
            raise _BackendFailure(f"connect to {backend.label}: {exc}") from exc

    def _release(
        self,
        backend: _Backend,
        conn: tuple[asyncio.StreamReader, asyncio.StreamWriter],
    ) -> None:
        if len(backend.pool) < self.config.pool_size:
            backend.pool.append(conn)
        else:
            conn[1].close()

    async def _exchange(
        self, backend: _Backend, opcode: int, body: bytes, *, timeout: float
    ) -> tuple[int, bytes]:
        """One framed request/response against a backend.

        Returns ``(response_opcode, response_body)``; any transport or
        framing failure raises :class:`_BackendFailure` and the
        connection is discarded, never repooled.
        """
        try:
            conn = await asyncio.wait_for(self._acquire(backend), timeout)
        except asyncio.TimeoutError as exc:
            raise _BackendFailure(
                f"connect to {backend.label}: timed out"
            ) from exc
        reader, writer = conn
        rid = next(self._backend_rids)
        try:
            writer.write(proto.encode_frame(opcode, rid, body))
            await asyncio.wait_for(writer.drain(), timeout)
            header = await asyncio.wait_for(
                reader.readexactly(proto.HEADER_SIZE), timeout
            )
            resp_op, resp_id, body_len = proto.parse_header(
                header, max_frame=self.config.max_frame
            )
            resp_body = await asyncio.wait_for(
                reader.readexactly(body_len), timeout
            )
            if resp_id != rid:
                raise ProtocolError(
                    f"backend answered request {resp_id}, expected {rid}"
                )
        except (
            OSError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ProtocolError,
            ConnectionError,
        ) as exc:
            writer.close()
            raise _BackendFailure(
                f"{backend.label}: {type(exc).__name__}: {exc}"
            ) from exc
        self._release(backend, conn)
        return resp_op, resp_body

    @staticmethod
    def _is_draining_error(opcode: int, body: bytes) -> bool:
        """A backend answering SHUTTING-DOWN should be failed over, not
        surfaced: from the client's seat the fleet is still up."""
        if opcode != proto.OP_ERROR or not body:
            return False
        return body[0] == proto.ERR_SHUTTING_DOWN

    # -- request dispatch ---------------------------------------------

    async def _dispatch(
        self, opcode: int, body: bytes
    ) -> tuple[int, bytes, str]:
        """Route one codec request; returns (opcode, body, outcome-label)."""
        cfg = self.config
        candidates = self._candidates(body)
        allowed = [b for b in candidates if b.breaker.allows()]
        attempts = allowed[: cfg.dispatch_attempts]
        busy_hints: list[int] = []
        for nth, backend in enumerate(attempts):
            if nth:
                self.registry.counter("failovers_total").inc()
            backend.inflight += 1
            try:
                resp_op, resp_body = await self._exchange(
                    backend, opcode, body, timeout=cfg.backend_timeout
                )
            except _BackendFailure:
                backend.breaker.record_failure()
                self._count_backend(backend, opcode, "transport-failure")
                continue
            finally:
                backend.inflight -= 1
            if self._is_draining_error(resp_op, resp_body):
                # Not a breaker failure: the backend answered, politely.
                self._count_backend(backend, opcode, "draining")
                continue
            if resp_op == proto.OP_BUSY:
                hint = proto.decode_busy_body(resp_body)
                busy_hints.append(hint if hint is not None else cfg.busy_retry_ms)
                backend.breaker.record_success()  # alive, just loaded
                self._count_backend(backend, opcode, "busy")
                continue
            backend.breaker.record_success()
            outcome = "ok" if resp_op == proto.OP_RESULT else "error"
            self._count_backend(backend, opcode, outcome)
            return resp_op, resp_body, outcome
        if busy_hints:
            # Every reachable backend pushed back: propagate the longest
            # hint so the client's backoff clears the whole fleet.
            return (
                proto.OP_BUSY,
                proto.encode_busy_body(max(busy_hints)),
                "all-busy",
            )
        # No backend answered: open breakers, dead connections, draining
        # fleets.  All of it is *transient* — health checks readmit
        # backends within open_seconds — so the honest reply is
        # backpressure (BUSY + hint), not a terminal error the client
        # would surface without retrying.
        self.registry.counter("unroutable_total").inc()
        return (
            proto.OP_BUSY,
            proto.encode_busy_body(cfg.busy_retry_ms),
            "unroutable",
        )

    def _count_backend(self, backend: _Backend, opcode: int, outcome: str) -> None:
        self.registry.counter(
            "router_requests_total",
            backend=backend.label,
            opcode=proto.REQUEST_OPCODES.get(opcode, hex(opcode)),
            outcome=outcome,
        ).inc()

    # -- client-facing plumbing ---------------------------------------

    async def _send(
        self, conn: _ClientConn, opcode: int, request_id: int, body: bytes = b""
    ) -> None:
        try:
            async with conn.write_lock:
                conn.writer.write(proto.encode_frame(opcode, request_id, body))
                await conn.writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            pass  # client went away; nothing left to deliver

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        cfg = self.config
        conn = _ClientConn(writer=writer)
        self._conns.add(conn)
        self.registry.gauge("connections").inc()
        try:
            while True:
                try:
                    header = await reader.readexactly(proto.HEADER_SIZE)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                try:
                    opcode, request_id, body_len = proto.parse_header(
                        header, max_frame=cfg.max_frame
                    )
                    if opcode not in proto.REQUEST_OPCODES:
                        raise ProtocolError(
                            f"opcode 0x{opcode:02x} is a response opcode"
                        )
                except ReproError as exc:
                    self.registry.counter("protocol_errors_total").inc()
                    await self._send(
                        conn, proto.OP_ERROR, getattr(exc, "request_id", 0),
                        proto.encode_error_body(proto.ERR_PROTOCOL, str(exc)),
                    )
                    break
                try:
                    body = await reader.readexactly(body_len)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if await self._admit(conn, opcode, request_id, body) is False:
                    break
        finally:
            for relay in tuple(conn.streams.values()):
                if relay.task is not None:
                    relay.task.cancel()
            self._conns.discard(conn)
            self.registry.gauge("connections").dec()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _admit(
        self, conn: _ClientConn, opcode: int, request_id: int, body: bytes
    ) -> bool | None:
        cfg = self.config
        if opcode == proto.OP_PING:
            await self._send(
                conn, proto.OP_RESULT, request_id, self._negotiate(conn, body)
            )
            return None
        if opcode == proto.OP_STATS:
            payload = json.dumps(self._stats()).encode("utf-8")
            await self._send(conn, proto.OP_RESULT, request_id, payload)
            return None
        if opcode in (proto.OP_STREAM_DATA, proto.OP_STREAM_END):
            return await self._admit_stream_frame(conn, opcode, request_id, body)
        if self._draining:
            await self._send(
                conn, proto.OP_ERROR, request_id,
                proto.encode_error_body(
                    proto.ERR_SHUTTING_DOWN, "router is draining"
                ),
            )
            return None
        if self._inflight >= cfg.inflight_high_water:
            # Shed at the front door: cheaper than queueing work the
            # fleet cannot absorb, and the hint spaces out the retries.
            self.registry.counter("sheds_total").inc()
            await self._send(
                conn, proto.OP_BUSY, request_id,
                proto.encode_busy_body(cfg.busy_retry_ms),
            )
            return None
        if opcode == proto.OP_STREAM_BEGIN:
            return self._admit_stream_begin(conn, request_id, body)
        self._inflight += 1
        self.registry.gauge("inflight").set(self._inflight)
        task = asyncio.ensure_future(
            self._run_request(conn, opcode, request_id, body)
        )
        self._jobs.add(task)
        task.add_done_callback(self._jobs.discard)
        return None

    def _negotiate(self, conn: _ClientConn, body: bytes) -> bytes:
        """Mirror the server's PING negotiation (fail-open to v1)."""
        if not body:
            return b""
        try:
            doc = proto.decode_ping_body(body)
        except ProtocolError:
            self.registry.counter("ping_negotiation_failures_total").inc()
            return b""
        tenant = doc.get("tenant")
        if isinstance(tenant, str) and tenant:
            conn.tenant = tenant
        if not doc.get("features"):
            return b""
        # The router relays streams transparently, so it advertises the
        # full feature set; the window is each backend's to grant.
        return proto.encode_ping_body(proto.FEATURES)

    # -- stream relaying ----------------------------------------------

    def _admit_stream_begin(
        self, conn: _ClientConn, request_id: int, body: bytes
    ) -> bool | None:
        conn.dead_streams.discard(request_id)
        if request_id in conn.streams:
            return None  # duplicate BEGIN: let the backend's ledger rule
        relay = _StreamRelay(body)
        conn.streams[request_id] = relay
        self._inflight += 1
        self.registry.gauge("inflight").set(self._inflight)
        self.registry.gauge("streams_in_flight").inc()
        relay.task = asyncio.ensure_future(
            self._run_stream_relay(conn, request_id, relay)
        )
        self._jobs.add(relay.task)
        relay.task.add_done_callback(self._jobs.discard)
        return None

    async def _admit_stream_frame(
        self, conn: _ClientConn, opcode: int, request_id: int, body: bytes
    ) -> bool | None:
        relay = conn.streams.get(request_id)
        if relay is not None:
            relay.push(opcode, body, replay_cap=self.config.stream_replay_buffer)
            return None
        if request_id in conn.dead_streams:
            # The stream already failed; frames the client had in flight
            # are tolerated, and END retires the tombstone.
            if opcode == proto.OP_STREAM_END:
                conn.dead_streams.discard(request_id)
            return None
        self.registry.counter("protocol_errors_total").inc()
        await self._send(
            conn, proto.OP_ERROR, request_id,
            proto.encode_error_body(
                proto.ERR_PROTOCOL,
                f"{proto.REQUEST_OPCODES[opcode].upper()} for correlation id "
                f"{request_id} with no preceding STREAM-BEGIN",
            ),
        )
        return False

    async def _run_stream_relay(
        self, conn: _ClientConn, request_id: int, relay: _StreamRelay
    ) -> None:
        """Place a stream on the ring and relay it end to end."""
        cfg = self.config
        start = self._clock()
        outcome = "error"
        try:
            candidates = [
                b for b in self._candidates(relay.begin_body)
                if b.breaker.allows()
            ]
            busy_hints: list[int] = []
            for nth, backend in enumerate(candidates[: cfg.dispatch_attempts]):
                if not relay.replayable:
                    break
                if nth:
                    self.registry.counter("failovers_total", kind="stream").inc()
                backend.inflight += 1
                try:
                    verdict = await self._relay_stream_on(
                        backend, conn, request_id, relay
                    )
                except _BackendFailure:
                    backend.breaker.record_failure()
                    self._count_backend(
                        backend, proto.OP_STREAM_BEGIN, "transport-failure"
                    )
                    continue
                finally:
                    backend.inflight -= 1
                if verdict == "busy":
                    backend.breaker.record_success()
                    self._count_backend(backend, proto.OP_STREAM_BEGIN, "busy")
                    busy_hints.append(cfg.busy_retry_ms)
                    continue
                if verdict == "draining":
                    self._count_backend(backend, proto.OP_STREAM_BEGIN, "draining")
                    continue
                backend.breaker.record_success()
                self._count_backend(
                    backend, proto.OP_STREAM_BEGIN,
                    "ok" if verdict == "done" else "error",
                )
                outcome = verdict
                return
            # No backend completed the stream.
            if relay.responded:
                # The client has seen frames from a dead attempt; a
                # replay would duplicate them, so the honest answer is
                # a terminal error.
                await self._send(
                    conn, proto.OP_ERROR, request_id,
                    proto.encode_error_body(
                        proto.ERR_INTERNAL,
                        "backend failed mid-stream after frames were relayed",
                    ),
                )
                outcome = "mid-stream-failure"
            elif busy_hints:
                await self._send(
                    conn, proto.OP_BUSY, request_id,
                    proto.encode_busy_body(max(busy_hints)),
                )
                outcome = "all-busy"
            else:
                self.registry.counter("unroutable_total").inc()
                await self._send(
                    conn, proto.OP_BUSY, request_id,
                    proto.encode_busy_body(cfg.busy_retry_ms),
                )
                outcome = "unroutable"
        finally:
            conn.streams.pop(request_id, None)
            if outcome != "done" and not relay.saw_end:
                # The client may still have DATA in flight for this id;
                # tolerate it until END retires the tombstone.
                conn.dead_streams.add(request_id)
            self._inflight -= 1
            self.registry.gauge("inflight").set(self._inflight)
            self.registry.gauge("streams_in_flight").dec()
            self.registry.histogram(
                "route_seconds", buckets=LATENCY_BUCKETS, opcode="stream",
            ).observe(self._clock() - start)

    async def _relay_stream_on(
        self,
        backend: _Backend,
        conn: _ClientConn,
        request_id: int,
        relay: _StreamRelay,
    ) -> str:
        """Run (or replay) one stream against one backend.

        Returns ``"done"`` (trailer or terminal error relayed),
        ``"busy"`` / ``"draining"`` (backend declined before anything
        was relayed; failover is safe), or raises :class:`_BackendFailure`.
        """
        cfg = self.config
        try:
            reader, writer = await asyncio.wait_for(
                self._acquire(backend), cfg.backend_timeout
            )
        except asyncio.TimeoutError as exc:
            raise _BackendFailure(
                f"connect to {backend.label}: timed out"
            ) from exc
        backend_rid = next(self._backend_rids)
        uplink: asyncio.Task | None = None
        try:
            if conn.tenant:
                # Dedicated connection: propagate the tenant so backend
                # quota accounting attributes the stream correctly.
                writer.write(proto.encode_frame(
                    proto.OP_PING, backend_rid,
                    proto.encode_ping_body(proto.FEATURES, tenant=conn.tenant),
                ))
                await asyncio.wait_for(writer.drain(), cfg.backend_timeout)
                header = await asyncio.wait_for(
                    reader.readexactly(proto.HEADER_SIZE), cfg.backend_timeout
                )
                op, _, blen = proto.parse_header(
                    header, max_frame=cfg.max_frame
                )
                await asyncio.wait_for(
                    reader.readexactly(blen), cfg.backend_timeout
                )
                if op != proto.OP_RESULT:
                    raise ProtocolError(f"negotiation answered 0x{op:02x}")
            # (Re)play the frame log from the top and follow it live; a
            # replay is byte-identical to a first attempt.
            relay.forwarded = 0

            async def pump_uplink() -> None:
                while True:
                    while relay.forwarded >= len(relay):
                        relay.wakeup.clear()
                        await relay.wakeup.wait()
                    op, frame_body = relay.frame(relay.forwarded)
                    writer.write(proto.encode_frame(op, backend_rid, frame_body))
                    await writer.drain()
                    relay.forwarded += 1
                    relay.trim()
                    if op == proto.OP_STREAM_END:
                        return

            uplink = asyncio.ensure_future(pump_uplink())
            first = True
            while True:
                timeout = cfg.backend_timeout if first else None
                read = reader.readexactly(proto.HEADER_SIZE)
                header = await (
                    asyncio.wait_for(read, timeout) if timeout else read
                )
                resp_op, resp_rid, body_len = proto.parse_header(
                    header, max_frame=cfg.max_frame
                )
                resp_body = await reader.readexactly(body_len)
                if resp_rid != backend_rid:
                    raise ProtocolError(
                        f"backend answered stream {resp_rid}, "
                        f"expected {backend_rid}"
                    )
                first = False
                if resp_op == proto.OP_BUSY and not relay.responded:
                    return "busy"
                if self._is_draining_error(resp_op, resp_body) and not relay.responded:
                    return "draining"
                relay.mark_responded()
                await self._send(conn, resp_op, request_id, resp_body)
                if resp_op == proto.OP_STREAM_DONE:
                    self._release(backend, (reader, writer))
                    writer = None
                    return "done"
                if resp_op in (proto.OP_ERROR, proto.OP_BUSY):
                    # Terminal for the stream; the backend tombstones
                    # the id, so its connection stays frame-aligned.
                    self._release(backend, (reader, writer))
                    writer = None
                    return "backend-error"
        except (
            OSError,
            EOFError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ProtocolError,
            ConnectionError,
        ) as exc:
            raise _BackendFailure(
                f"{backend.label}: {type(exc).__name__}: {exc}"
            ) from exc
        finally:
            if uplink is not None:
                uplink.cancel()
                with contextlib.suppress(asyncio.CancelledError, Exception):
                    await uplink
            if writer is not None:
                writer.close()

    async def _run_request(
        self, conn: _ClientConn, opcode: int, request_id: int, body: bytes
    ) -> None:
        start = self._clock()
        try:
            resp_op, resp_body, _outcome = await self._dispatch(opcode, body)
            await self._send(conn, resp_op, request_id, resp_body)
        except Exception as exc:  # never let a routing bug hang a client
            from repro.errors import traceback_summary

            await self._send(
                conn, proto.OP_ERROR, request_id,
                proto.encode_error_body(
                    proto.ERR_INTERNAL, traceback_summary(exc)
                ),
            )
        finally:
            self._inflight -= 1
            self.registry.gauge("inflight").set(self._inflight)
            self.registry.histogram(
                "route_seconds", buckets=LATENCY_BUCKETS,
                opcode=proto.REQUEST_OPCODES.get(opcode, hex(opcode)),
            ).observe(self._clock() - start)

    def _stats(self) -> dict:
        cfg = self.config
        return {
            "router": {
                "uptime_seconds": self._clock() - self._started_at,
                "draining": self._draining,
                "inflight": self._inflight,
                "inflight_high_water": cfg.inflight_high_water,
                "dispatch_attempts": cfg.dispatch_attempts,
                "failure_threshold": cfg.failure_threshold,
                "open_seconds": cfg.open_seconds,
                "health_interval": cfg.health_interval,
                "backends": [
                    {
                        "address": b.label,
                        "breaker": b.breaker.state,
                        "consecutive_failures": b.breaker.failures,
                        "inflight": b.inflight,
                        "pooled_connections": len(b.pool),
                    }
                    for b in self._backends
                ],
            },
            "metrics": self.registry.snapshot(),
        }


class RouterThread:
    """Run a :class:`ShardRouter` on a background thread (test harness).

    The router-shaped sibling of
    :class:`~repro.service.server.ServerThread`::

        with RouterThread(RouterConfig(port=0, backends=addrs)) as rt:
            with ResilientClient(f"127.0.0.1:{rt.port}") as client:
                blob = client.compress(array)
    """

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.router: ShardRouter | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.router is not None and self.router.port is not None
        return self.router.port

    def __enter__(self) -> "RouterThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-route", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServiceError("router thread failed to start in time")
        if self._error is not None:
            raise ServiceError(f"router failed to start: {self._error}")
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _main(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.router = ShardRouter(self.config)
        try:
            await self.router.start()
        except BaseException as exc:
            self._error = exc
            self._started.set()
            return
        self._started.set()
        await self.router.wait_stopped()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        if self._loop is None or self.router is None or self._error is not None:
            return
        if self._thread is None or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.router.stop(drain=drain), self._loop
        )
        with contextlib.suppress(Exception):
            future.result(timeout=timeout)
