"""Retrying, failing-over clients for the compression service.

Two pieces:

* :class:`RetryPolicy` — capped exponential backoff with full jitter
  and a total-sleep budget, honouring the server's ``retry_after_ms``
  hint as a lower bound on the next delay.
* :class:`ResilientClient` — the same operations as
  :class:`~repro.service.client.ServiceClient`, but spread over an
  address list (several backends, or one router): dead or poisoned
  connections are replaced, transport failures fail over to the next
  address, BUSY responses back off and retry, and typed server-side
  errors (a corrupt container, an unknown codec) surface immediately —
  retrying them would only fail identically.

The idempotency guard: compress/decompress/inspect/stats/ping are pure
reads or pure functions of their request body, so re-sending one after
an ambiguous failure is always safe.  For anything that is not,
:meth:`ResilientClient.call` takes ``idempotent=False`` and will
*never* re-send a request that may already have reached the server — a
transport failure after the first byte hit the wire re-raises instead
of retrying.  Only failures that provably happened before any byte was
sent (a refused connection, a poisoned-connection rejection, a BUSY
reply) are retried for non-idempotent calls.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import BusyError, QuotaExceededError, ReproError, ServiceError
from repro.service import protocol as proto
from repro.service.client import ServiceClient
from repro.service.metrics import MetricsRegistry


def parse_address(spec) -> tuple[str, int]:
    """``"host:port"`` or ``(host, port)`` into a ``(host, port)`` tuple."""
    if isinstance(spec, (tuple, list)):
        host, port = spec
        return str(host), int(port)
    host, sep, port = str(spec).rpartition(":")
    if not sep or not host:
        raise ServiceError(f"address {spec!r} must look like HOST:PORT")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ServiceError(f"address {spec!r} has a non-integer port") from exc


def format_address(addr: tuple[str, int]) -> str:
    return f"{addr[0]}:{addr[1]}"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff, full jitter, budgeted.

    The delay before retry *k* (0-based) is drawn uniformly from
    ``[0, min(cap_ms, base_ms * 2**k)]`` — AWS-style "full jitter", so
    a fleet of clients rejected together does not retry together.  A
    server ``retry_after_ms`` hint raises the draw's floor to the hint:
    the server knows its queue better than the client's dice do.

    Two independent stop conditions bound a logical request: at most
    ``attempts`` tries in total, and at most ``budget_ms`` of cumulative
    backoff sleep.  Whichever is hit first ends the retry loop and the
    last error surfaces to the caller.
    """

    #: Total tries (the first attempt plus up to ``attempts - 1`` retries).
    attempts: int = 5
    #: First backoff ceiling in milliseconds.
    base_ms: float = 25.0
    #: Upper bound any single backoff can reach.
    cap_ms: float = 2_000.0
    #: Total backoff sleep allowed per logical request.
    budget_ms: float = 15_000.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ServiceError("RetryPolicy.attempts must be at least 1")

    def schedule(self, rng: random.Random | None = None) -> "RetrySchedule":
        """A fresh per-request retry state (attempt and budget counters)."""
        return RetrySchedule(self, rng or random.Random())


class RetrySchedule:
    """Mutable per-request view of a :class:`RetryPolicy`."""

    def __init__(self, policy: RetryPolicy, rng: random.Random) -> None:
        self.policy = policy
        self.rng = rng
        self.retries = 0
        self.slept_ms = 0.0

    def next_delay_ms(self, *, retry_after_ms: int | None = None) -> float | None:
        """Milliseconds to sleep before the next try, or None to give up.

        None means a retry is no longer allowed: either ``attempts`` is
        exhausted or the ``budget_ms`` sleep budget would overflow.
        Calling it consumes one retry.
        """
        policy = self.policy
        if self.retries >= policy.attempts - 1:
            return None
        ceiling = min(policy.cap_ms, policy.base_ms * (2.0 ** self.retries))
        delay = self.rng.uniform(0.0, ceiling)
        if retry_after_ms is not None:
            delay = max(delay, float(retry_after_ms))
        if self.slept_ms + delay > policy.budget_ms:
            return None
        self.retries += 1
        self.slept_ms += delay
        return delay


def is_transport_error(exc: BaseException) -> bool:
    """True for failures of the *connection*, not of the request.

    Transport errors (a dead socket, a mid-frame timeout, a stream
    desynchronization) say nothing about the request itself, so an
    idempotent request is safe to re-send elsewhere.  Typed server-side
    errors — a corrupt container, an unknown codec, a deadline — are
    deterministic answers and are never retried.
    """
    return bool(getattr(exc, "transport", False))


def request_may_have_been_applied(exc: BaseException) -> bool:
    """True unless the failed request provably never hit the wire."""
    return bool(getattr(exc, "request_sent", True))


class ResilientClient:
    """A :class:`ServiceClient` that survives its connection.

    ``addresses`` is one or more ``"host:port"`` backends (or a single
    router).  One connection is held at a time; when it dies or is
    poisoned, the next request transparently reconnects, starting at
    the address that last worked and failing over down the list.

    Every retry, reconnect, and failover increments ``registry`` (a
    :class:`~repro.service.metrics.MetricsRegistry`), so client-side
    resilience is as observable as the server side.
    """

    def __init__(
        self,
        addresses,
        *,
        policy: RetryPolicy | None = None,
        timeout: float = 30.0,
        max_frame: int = proto.DEFAULT_MAX_FRAME,
        registry: MetricsRegistry | None = None,
        seed: int | None = None,
        client_factory=None,
        sleep=time.sleep,
    ) -> None:
        if isinstance(addresses, (str, tuple)):
            addresses = [addresses]
        self.addresses = [parse_address(spec) for spec in addresses]
        if not self.addresses:
            raise ServiceError("ResilientClient needs at least one address")
        self.policy = policy or RetryPolicy()
        self.registry = registry or MetricsRegistry()
        self._timeout = timeout
        self._max_frame = max_frame
        self._rng = random.Random(seed)
        self._factory = client_factory or (
            lambda host, port: ServiceClient(
                host, port, timeout=self._timeout, max_frame=self._max_frame
            )
        )
        self._sleep = sleep
        self._client: ServiceClient | None = None
        self._addr_index = 0

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        self._discard()

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connected_to(self) -> tuple[str, int] | None:
        """The backend the live connection points at, if any."""
        if self._client is None or self._client.broken is not None:
            return None
        return self.addresses[self._addr_index]

    def _discard(self, *, failover: bool = False) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except OSError:
                pass
            self._client = None
        if failover and len(self.addresses) > 1:
            self._addr_index = (self._addr_index + 1) % len(self.addresses)
            self.registry.counter("client_failovers_total").inc()

    def _lease(self) -> ServiceClient:
        """The live connection, or a fresh one tried across all addresses."""
        if self._client is not None and self._client.broken is None:
            return self._client
        self._discard()
        errors: list[str] = []
        for k in range(len(self.addresses)):
            i = (self._addr_index + k) % len(self.addresses)
            host, port = self.addresses[i]
            try:
                client = self._factory(host, port)
            except ServiceError as exc:
                errors.append(str(exc))
                continue
            if k:
                self.registry.counter("client_failovers_total").inc()
            self.registry.counter("client_reconnects_total").inc()
            self._addr_index = i
            self._client = client
            return client
        exc = ServiceError(
            "no backend reachable: " + "; ".join(errors)
        )
        # A refused connection never carries a request: always retryable.
        exc.transport = True
        exc.request_sent = False
        raise exc

    # -- the retry loop -----------------------------------------------

    def call(self, fn, *, idempotent: bool = True):
        """Run ``fn(client)`` under the retry policy.

        ``fn`` receives a connected :class:`ServiceClient` and may be
        re-invoked (on a different backend) after transport failures or
        BUSY pushback.  With ``idempotent=False`` the guard applies: a
        failure after the request may have reached the server re-raises
        instead of re-sending.
        """
        schedule = self.policy.schedule(self._rng)
        while True:
            try:
                client = self._lease()
                return fn(client)
            except BusyError as exc:
                # The server explicitly did NOT act on the request, so
                # even non-idempotent calls may retry after the backoff.
                delay = schedule.next_delay_ms(retry_after_ms=exc.retry_after_ms)
                if delay is None:
                    raise
                self.registry.counter("client_retries_total", reason="busy").inc()
                self._sleep(delay / 1e3)
            except QuotaExceededError as exc:
                # Like BUSY, a quota rejection happens strictly at
                # admission — the request was not acted on — and carries
                # a refill hint.  Safe to retry for any idempotency.
                delay = schedule.next_delay_ms(retry_after_ms=exc.retry_after_ms)
                if delay is None:
                    raise
                self.registry.counter("client_retries_total", reason="quota").inc()
                self._sleep(delay / 1e3)
            except ReproError as exc:
                if not is_transport_error(exc):
                    raise
                self._discard(failover=True)
                if not idempotent and request_may_have_been_applied(exc):
                    # Half-sent state: the server may act on the frame
                    # we cannot account for.  Re-sending could apply the
                    # request twice; surface the ambiguity instead.
                    raise
                delay = schedule.next_delay_ms()
                if delay is None:
                    raise
                self.registry.counter(
                    "client_retries_total", reason="transport"
                ).inc()
                self._sleep(delay / 1e3)

    # -- pipelined operation batches ----------------------------------

    def _pipelined(self, submits, collects, *, depth: int, idempotent: bool = True):
        """Run many requests with up to ``depth`` in flight at once.

        ``submits[i](client) -> rid`` sends request *i* without waiting;
        ``collects[i](client, rid)`` claims its result.  Retry
        book-keeping is **per correlation id**: a BUSY (or quota) answer
        backs off and re-queues only the rejected request — each with
        its own :class:`RetrySchedule`, so one hot id cannot exhaust its
        neighbours' budgets.  A transport failure re-queues every
        uncollected id on a fresh connection when ``idempotent`` — and
        for non-idempotent batches re-queues only ids that provably
        never hit the wire, raising for the ambiguous ones.
        """
        if depth < 1:
            raise ServiceError(f"pipeline depth must be >= 1, got {depth}")
        n = len(submits)
        results: list = [None] * n
        schedules: list[RetrySchedule | None] = [None] * n
        conn_schedule = self.policy.schedule(self._rng)
        todo: deque[int] = deque(range(n))
        outstanding: deque[tuple[int, int]] = deque()  # (op index, rid)

        def backoff(i: int, reason: str, exc) -> None:
            schedule = schedules[i]
            if schedule is None:
                schedule = schedules[i] = self.policy.schedule(self._rng)
            delay = schedule.next_delay_ms(
                retry_after_ms=getattr(exc, "retry_after_ms", None)
            )
            if delay is None:
                raise exc
            self.registry.counter("client_retries_total", reason=reason).inc()
            self._sleep(delay / 1e3)
            todo.appendleft(i)

        def on_transport(exc, *, submitted_i: int | None) -> None:
            """Reshuffle after a broken connection mid-batch."""
            self._discard(failover=True)
            ambiguous = [i for i, _ in outstanding]
            if submitted_i is not None and request_may_have_been_applied(exc):
                ambiguous.append(submitted_i)
            elif submitted_i is not None:
                todo.appendleft(submitted_i)  # provably unsent: always retry
            outstanding.clear()
            if ambiguous:
                if not idempotent:
                    raise exc
                todo.extendleft(reversed(ambiguous))
            delay = conn_schedule.next_delay_ms()
            if delay is None:
                raise exc
            self.registry.counter(
                "client_retries_total", reason="transport"
            ).inc()
            self._sleep(delay / 1e3)

        while todo or outstanding:
            try:
                client = self._lease()
            except ReproError as exc:
                if not is_transport_error(exc):
                    raise
                on_transport(exc, submitted_i=None)
                continue
            # Fill the window.
            while todo and len(outstanding) < depth:
                i = todo.popleft()
                try:
                    rid = submits[i](client)
                except ReproError as exc:
                    if not is_transport_error(exc):
                        raise
                    on_transport(exc, submitted_i=i)
                    break
                outstanding.append((i, rid))
            if not outstanding:
                continue
            # Collect the oldest submitted request.
            i, rid = outstanding.popleft()
            try:
                results[i] = collects[i](client, rid)
            except BusyError as exc:
                backoff(i, "busy", exc)
            except QuotaExceededError as exc:
                backoff(i, "quota", exc)
            except ReproError as exc:
                if not is_transport_error(exc):
                    raise
                on_transport(exc, submitted_i=i)
        return results

    def compress_many(
        self, items, codec: str | None = None, *, depth: int = 8
    ) -> list[bytes]:
        """Pipelined :meth:`compress` over ``items``, order-preserving."""
        items = list(items)
        return self._pipelined(
            [
                (lambda c, item=item: c.submit_compress(item, codec))
                for item in items
            ],
            [(lambda c, rid: c.collect(rid))] * len(items),
            depth=depth,
        )

    def decompress_many(self, blobs, *, depth: int = 8) -> list:
        """Pipelined :meth:`decompress` over ``blobs``, order-preserving."""
        blobs = [bytes(b) for b in blobs]
        return self._pipelined(
            [(lambda c, blob=blob: c.submit_decompress(blob)) for blob in blobs],
            [(lambda c, rid: c.collect_decompress(rid))] * len(blobs),
            depth=depth,
        )

    # -- operations (all idempotent: pure functions of their body) ----

    def compress(self, data, codec: str | None = None) -> bytes:
        return self.call(lambda c: c.compress(data, codec))

    def decompress(self, blob: bytes) -> np.ndarray | bytes:
        return self.call(lambda c: c.decompress(blob))

    def compress_streamed(self, data, codec: str | None = None) -> bytes:
        """Streamed :meth:`compress` with the half-sent stream guard.

        Compression is a pure function of its payload, so a stream that
        failed mid-flight is safe to re-run *on a fresh connection* —
        but a half-sent stream is never resumed or re-sent on the same
        connection (its correlation id is dead server-side).  The
        reconnect inside :meth:`call` guarantees that.
        """
        return self.call(lambda c: c.compress_streamed(data, codec))

    def decompress_streamed(self, blob: bytes) -> np.ndarray | bytes:
        return self.call(lambda c: c.decompress_streamed(blob))

    def inspect(self, blob: bytes) -> dict:
        return self.call(lambda c: c.inspect(blob))

    def stats(self) -> dict:
        return self.call(lambda c: c.stats())

    def ping(self) -> bool:
        return self.call(lambda c: c.ping())
