"""Live serving metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` is the single instrumentation surface of the
compression service.  The server increments it on every admission
decision and completed job; the ``STATS`` opcode (and ``fprz stats``)
ships :meth:`MetricsRegistry.snapshot` to clients as JSON.

The design follows the Prometheus data model in miniature — named
metrics with label sets, monotonic counters, point-in-time gauges, and
cumulative-bucket histograms — without any external dependency.  All
mutation goes through one lock per registry; the hot-path cost is a
dict lookup and an integer add, far below the codec work it measures.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field

#: Request latency buckets in seconds (upper bounds; +Inf is implicit).
LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

#: Payload size buckets in bytes: 1 KiB .. 64 MiB in powers of four.
SIZE_BUCKETS = tuple(1024 * 4**i for i in range(9))

#: Compression-ratio buckets (original / compressed).
RATIO_BUCKETS = (0.5, 1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0)

#: Pipelining-depth buckets: requests in flight on one connection at
#: admission time (upper bounds; +Inf is implicit).
DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(name: str, key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)


class Histogram:
    """Cumulative-bucket histogram with sum and count.

    ``bounds`` are the inclusive upper bounds of each bucket; one
    overflow bucket (+Inf) is always appended.
    """

    __slots__ = ("_lock", "bounds", "bucket_counts", "total", "count")

    def __init__(self, lock: threading.Lock, bounds: tuple[float, ...]) -> None:
        self._lock = lock
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        i = bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[i] += 1
            self.total += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class MetricsRegistry:
    """Thread-safe named-metric store with label support."""

    _lock: threading.Lock = field(default_factory=threading.Lock)
    _counters: dict = field(default_factory=dict)
    _gauges: dict = field(default_factory=dict)
    _histograms: dict = field(default_factory=dict)

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(self._lock)
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge(self._lock)
        return metric

    def histogram(
        self, name: str, *, buckets: tuple[float, ...] = LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(self._lock, buckets)
        return metric

    def snapshot(self) -> dict:
        """JSON-ready view of every metric (the STATS opcode payload)."""
        with self._lock:
            counters = {
                _render_key(name, key): c.value
                for (name, key), c in sorted(self._counters.items())
            }
            gauges = {
                _render_key(name, key): g.value
                for (name, key), g in sorted(self._gauges.items())
            }
            histograms = {}
            for (name, key), h in sorted(self._histograms.items()):
                histograms[_render_key(name, key)] = {
                    "buckets": {
                        **{str(b): c for b, c in zip(h.bounds, h.bucket_counts)},
                        "+Inf": h.bucket_counts[-1],
                    },
                    "sum": h.total,
                    "count": h.count,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def render(self) -> str:
        """Human-readable metrics table (``fprz stats``)."""
        return render_snapshot(self.snapshot())


def render_snapshot(snap: dict) -> str:
    """Format a :meth:`MetricsRegistry.snapshot` dict for terminals."""
    lines: list[str] = []
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    histograms = snap.get("histograms", {})
    if counters:
        lines.append("counters:")
        lines.extend(f"  {k:<56} {v}" for k, v in counters.items())
    if gauges:
        lines.append("gauges:")
        lines.extend(f"  {k:<56} {v}" for k, v in gauges.items())
    if histograms:
        lines.append("histograms:")
        for k, h in histograms.items():
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"  {k:<56} count={h['count']} mean={mean:.6g}"
            )
            nonzero = {b: c for b, c in h["buckets"].items() if c}
            if nonzero:
                inner = ", ".join(f"<={b}: {c}" for b, c in nonzero.items())
                lines.append(f"    {inner}")
    return "\n".join(lines) if lines else "(no metrics recorded)"
