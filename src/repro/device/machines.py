"""Parameter sets for the paper's evaluation machines (§4).

Numbers are *effective* figures for the access patterns of these codecs,
not datasheet peaks: e.g. the A100's HBM2e peaks higher than the RTX
4090's GDDR6X, but the paper observes that every compressor except
Bitcomp runs faster on the 4090 ("we optimized our compressors ... for
newer GPUs"), so the A100's effective bandwidth and op rate are set
below the 4090's for these kernels.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Device:
    """An execution target for the throughput model."""

    name: str
    kind: str              # "gpu" or "cpu"
    mem_bw: float          # effective GB/s for streaming access
    compute: float         # sustained simple word-ops per second, in Gops
    sort_bw: float         # device-wide radix-sort bandwidth, GB/s of keys
    #: scale applied to calibrated third-party GPU/CPU throughputs
    #: (1.0 on the machine the calibration table is anchored to)
    baseline_scale: float
    #: Bitcomp is the paper's outlier: "particularly optimized for the
    #: A100"; its variants get this scale instead of ``baseline_scale``.
    bitcomp_scale: float
    #: *effective* per-chunk scheduling cost in nanoseconds — the worklist
    #: pop / block dispatch latency divided by the device's concurrency
    #: (thousands of resident blocks on a GPU, the thread count on a CPU);
    #: dominates for tiny chunks
    chunk_overhead_ns: float = 5.0
    #: fast local storage for a chunk pipeline's two buffers: the GPU's
    #: shared memory or the CPU's L1D ("we choose this size so that we can
    #: fit two chunk buffers in the GPU's shared memory and the CPU's L1
    #: data cache", §3) — chunks above half this spill
    fast_buffer_bytes: int = 32768
    #: memory-traffic multiplier once intermediate stage buffers no longer
    #: fit the fast storage and spill to the next level
    spill_penalty: float = 1.8


RTX4090 = Device(
    name="RTX 4090",
    kind="gpu",
    mem_bw=1000.0,
    compute=5000.0,
    sort_bw=16.0,
    baseline_scale=1.0,
    bitcomp_scale=1.0,
    chunk_overhead_ns=4.0,
    fast_buffer_bytes=49152,
)

A100 = Device(
    name="A100",
    kind="gpu",
    mem_bw=650.0,
    compute=2400.0,
    sort_bw=11.0,
    baseline_scale=0.70,
    bitcomp_scale=1.15,  # paper §5.1: Bitcomp-b runs faster on the A100
    chunk_overhead_ns=6.0,
    fast_buffer_bytes=65536,
)

RYZEN_2950X = Device(
    name="Ryzen 2950X",
    kind="cpu",
    mem_bw=30.0,
    compute=300.0,
    sort_bw=1.0,
    baseline_scale=1.0,
    bitcomp_scale=1.0,
    chunk_overhead_ns=60.0,
    fast_buffer_bytes=32768,
)

XEON_6226R = Device(
    name="Xeon 6226R (2x)",
    kind="cpu",
    mem_bw=57.0,
    compute=560.0,
    sort_bw=2.0,
    baseline_scale=1.9,  # two sockets, twice the cores (paper §5.1)
    bitcomp_scale=1.9,
    chunk_overhead_ns=40.0,
    fast_buffer_bytes=32768,
)

ALL_DEVICES = {d.name: d for d in (RTX4090, A100, RYZEN_2950X, XEON_6226R)}
