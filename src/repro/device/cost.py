"""Cost profiles: how much work a codec does per input byte.

A :class:`CostProfile` abstracts one direction (compress or decompress)
of one codec as three intensities, each normalised per byte of
*uncompressed* data:

* ``mem_bytes`` — main-memory traffic (reads + writes); chunked codecs
  keep intermediate stages in shared memory / L1 (paper §3.1), so this
  is ~(1 read + 1 write) plus format overheads, not per-stage traffic;
* ``ops`` — simple word operations (shifts, xors, adds, table lookups);
* ``sort_bytes`` — bytes that pass through a device-wide sort (zero for
  every stage except DPratio's FCM encoder — its decoder needs no sort,
  which is exactly why the paper's DPratio decompresses an order of
  magnitude faster than it compresses).

Evaluation is a roofline: ``time/byte = max(mem, compute) + sort``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.machines import Device


@dataclass(frozen=True)
class CostProfile:
    """Per-input-byte work of one codec direction."""

    mem_bytes: float
    ops: float
    sort_bytes: float = 0.0

    def throughput(self, device: Device, chunk_size: int | None = None) -> float:
        """Modeled throughput in GB/s on ``device``.

        ``chunk_size`` enables the chunk-granularity terms: a fixed
        scheduling cost per chunk (hurts tiny chunks) and a memory-spill
        penalty once two chunk buffers stop fitting the device's fast
        local storage (hurts huge chunks) — the two forces behind the
        paper's 16 KiB choice (§3).
        """
        mem_bytes = self.mem_bytes
        overhead = 0.0
        if chunk_size is not None:
            if chunk_size <= 0:
                raise ValueError("chunk size must be positive")
            if 2 * chunk_size > device.fast_buffer_bytes:
                mem_bytes *= device.spill_penalty
            overhead = device.chunk_overhead_ns / chunk_size
        mem_time = mem_bytes / device.mem_bw
        compute_time = self.ops / device.compute
        sort_time = self.sort_bytes / device.sort_bw
        total = max(mem_time, compute_time) + sort_time + overhead
        return 1.0 / total


@dataclass(frozen=True)
class CodecCost:
    """Compress/decompress profile pair for one codec."""

    compress: CostProfile
    decompress: CostProfile


#: Profiles for the paper's four codecs.  Stage accounting:
#:   DIFFMS    ~3 ops/word  (subtract, shift, xor)
#:   MPLG      ~6 ops/word  (max-reduce, clz, funnel shift, pack)
#:   BIT       ~10 ops/word (log2(w) shuffle steps)
#:   RZE       ~8 ops/word  (bitmap build, prefix sum, scatter)
#:   RAZE/RARE ~10 ops/word (histogram, prefix sums, split, pack)
#:   FCM enc   hash+sort over the whole input; dec: pointer chasing
#: divided by the word size to get per-byte figures.
OUR_CODECS: dict[str, CodecCost] = {
    "spspeed": CodecCost(
        compress=CostProfile(mem_bytes=1.95, ops=2.4),
        decompress=CostProfile(mem_bytes=1.90, ops=2.2),
    ),
    "spratio": CodecCost(
        compress=CostProfile(mem_bytes=2.0, ops=17.0),
        decompress=CostProfile(mem_bytes=2.0, ops=19.0),
    ),
    "dpspeed": CodecCost(
        compress=CostProfile(mem_bytes=2.05, ops=2.0),
        decompress=CostProfile(mem_bytes=2.00, ops=1.9),
    ),
    "dpratio": CodecCost(
        # FCM doubles the data (4 bytes moved per input byte) and sorts
        # one (hash, index) pair stream the size of the input.
        compress=CostProfile(mem_bytes=4.2, ops=26.0, sort_bytes=1.0),
        decompress=CostProfile(mem_bytes=4.0, ops=9.0),
    ),
}
