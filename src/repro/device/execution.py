"""Execution-schedule simulation of the paper's parallel encoders (§3.1).

The paper's CPU code "dynamically assign[s] the chunks to the threads to
maximize the load balance"; the GPU code does the same with thread
blocks and communicates compressed-chunk write positions with Merrill &
Garland's decoupled look-back.  This module simulates those schedules
deterministically:

* :func:`chunk_work_estimates` turns real per-chunk compression work into
  task durations (chunks that fall back to raw storage are cheaper on the
  writing side but were still transformed — both passes are charged);
* :class:`WorklistSimulator` plays the dynamic worklist (greedy:
  whichever worker frees first pops the next chunk) or a static blocked
  partition against ``n_workers`` execution slots;  policies share one
  vocabulary with the *real* executors in :mod:`repro.core.executors`
  (``threaded`` is the dynamic worklist, ``static-blocks`` the blocked
  partition, and the partition boundaries come from the same
  :func:`~repro.core.executors.static_block_bounds`), so a modeled
  schedule and a measured run describe the same strategy;
* :func:`lookback_write_completion` adds the §3.1 write-position chain on
  top of a schedule: chunk *i* may only learn its output offset after
  chunk *i-1* posts its compressed size, so stragglers can serialise the
  tail of the write phase.

Everything is exact arithmetic over the task durations — no randomness —
so schedules are reproducible and assertable in tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.chunking import CHUNK_SIZE, iter_chunks
from repro.core.codecs import Codec
from repro.core.executors import normalize_policy, static_block_bounds
from repro.device.machines import Device


@dataclass(frozen=True)
class Schedule:
    """Outcome of one simulated run."""

    policy: str
    n_workers: int
    makespan: float
    per_worker_busy: tuple[float, ...]
    #: task index -> worker that executed it
    assignment: tuple[int, ...]
    #: task index -> (start, finish) times
    spans: tuple[tuple[float, float], ...]

    @property
    def total_work(self) -> float:
        return float(sum(self.per_worker_busy))

    @property
    def utilization(self) -> float:
        """Fraction of worker-time spent busy (1.0 = perfect balance)."""
        if self.makespan <= 0 or self.n_workers == 0:
            return 1.0
        return self.total_work / (self.makespan * self.n_workers)

    @property
    def imbalance(self) -> float:
        """Max worker busy time over mean busy time (1.0 = perfect)."""
        busy = np.array(self.per_worker_busy)
        mean = busy.mean()
        return float(busy.max() / mean) if mean > 0 else 1.0


def chunk_work_estimates(
    data: bytes, codec: Codec, *, chunk_size: int = CHUNK_SIZE
) -> np.ndarray:
    """Per-chunk work estimates (arbitrary time units) from real encoding.

    Work scales with the bytes each chunk's pipeline touches: the chunk
    itself plus every intermediate stage output.  Compressible chunks do
    more transformation work (their later stages still run); raw-fallback
    chunks stop paying after the failed attempt — both match how the real
    encoder spends its time.
    """
    pipeline = codec.make_pipeline()
    estimates = []
    for chunk in iter_chunks(data, chunk_size):
        touched = len(chunk)
        body = chunk
        for stage in pipeline.stages:
            body = stage.encode(body)
            touched += len(body)
        estimates.append(float(touched))
    return np.array(estimates)


class WorklistSimulator:
    """Deterministic multi-worker schedule simulation."""

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.n_workers = n_workers

    def simulate(self, work: np.ndarray, policy: str = "dynamic") -> Schedule:
        """Play ``work`` under a scheduling policy.

        Policy names are the executor vocabulary of
        :mod:`repro.core.executors` — ``threaded`` (alias ``dynamic``),
        ``static-blocks`` (alias ``static``), or ``serial`` (one worker
        regardless of ``n_workers``).
        """
        policy = normalize_policy(policy)
        if policy == "serial":
            schedule = WorklistSimulator(1)._dynamic(work)
            return Schedule("serial", 1, schedule.makespan,
                            schedule.per_worker_busy, schedule.assignment,
                            schedule.spans)
        if policy == "threaded":
            return self._dynamic(work)
        return self._static(work)

    def _dynamic(self, work: np.ndarray) -> Schedule:
        """The paper's worklist: the next free worker pops the next chunk."""
        free_at = [(0.0, worker) for worker in range(self.n_workers)]
        heapq.heapify(free_at)
        busy = [0.0] * self.n_workers
        assignment = []
        spans = []
        for duration in work:
            start, worker = heapq.heappop(free_at)
            finish = start + float(duration)
            busy[worker] += float(duration)
            assignment.append(worker)
            spans.append((start, finish))
            heapq.heappush(free_at, (finish, worker))
        makespan = max((t for t, _ in free_at), default=0.0)
        return Schedule("threaded", self.n_workers, makespan, tuple(busy),
                        tuple(assignment), tuple(spans))

    def _static(self, work: np.ndarray) -> Schedule:
        """Blocked partition: worker w gets chunks [w*n/W, (w+1)*n/W)."""
        n = len(work)
        bounds = static_block_bounds(n, self.n_workers)
        busy = [0.0] * self.n_workers
        assignment = [0] * n
        spans: list[tuple[float, float]] = [(0.0, 0.0)] * n
        for worker in range(self.n_workers):
            clock = 0.0
            for task in range(bounds[worker], bounds[worker + 1]):
                duration = float(work[task])
                spans[task] = (clock, clock + duration)
                clock += duration
                assignment[task] = worker
            busy[worker] = clock
        makespan = max(busy, default=0.0)
        return Schedule("static-blocks", self.n_workers, makespan, tuple(busy),
                        tuple(assignment), tuple(spans))


def lookback_write_completion(
    schedule: Schedule, *, post_latency: float = 0.0
) -> np.ndarray:
    """When each chunk's *write* completes under decoupled look-back.

    Chunk ``i`` knows its write offset once chunk ``i-1`` has posted its
    compressed size (paper §3.1: the encoder "busy-waits for the write
    position from the thread processing the prior chunk").  With
    ``finish_i`` the transform-finish times from the schedule::

        write_i = max(finish_i, write_{i-1} + post_latency)

    The returned array's last element is the end-to-end encode time; the
    difference to ``schedule.makespan`` is the serialisation cost of the
    position chain (zero when chunks finish roughly in order — the
    "decoupled" part works because predecessors usually post early).
    """
    finishes = np.array([finish for _, finish in schedule.spans])
    writes = np.empty_like(finishes)
    previous = 0.0
    for i, finish in enumerate(finishes):
        previous = max(float(finish), previous + post_latency)
        writes[i] = previous
    return writes


def simulate_encoder(
    data: bytes,
    codec: Codec,
    device: Device,
    *,
    policy: str = "dynamic",
    chunk_size: int = CHUNK_SIZE,
) -> tuple[Schedule, float]:
    """Full §3.1 encode simulation on ``device``; returns (schedule, time).

    Worker count stands in for the device's concurrency: one per SM on a
    GPU-class device, one per hardware thread on a CPU-class one.  The
    returned time is the look-back-aware end-to-end completion in the
    schedule's work units.
    """
    workers = {"gpu": 128, "cpu": 32}[device.kind]
    work = chunk_work_estimates(data, codec, chunk_size=chunk_size)
    schedule = WorklistSimulator(workers).simulate(work, policy)
    writes = lookback_write_completion(schedule)
    total = float(writes[-1]) if len(writes) else 0.0
    return schedule, total
