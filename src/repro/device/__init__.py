"""The CPU/GPU execution model replacing the paper's physical testbed.

No CUDA GPU (or 32-core Xeon) exists in this environment, so throughput
— the x-axis of Figures 8-19 — comes from an analytical model instead of
wall-clock timing.  Two ingredients:

* :mod:`repro.device.machines` — parameter sets for the paper's four
  machines (RTX 4090, A100, Ryzen 2950X, dual Xeon 6226R): achievable
  memory bandwidth, sustained simple-word-op throughput, and device sort
  bandwidth.
* :mod:`repro.device.cost` + :mod:`repro.device.model` — per-codec cost
  profiles (bytes moved, ops executed, bytes sorted per input byte) for
  our four algorithms, evaluated against a machine with a roofline rule
  (time = max(memory time, compute time) + sort time); plus a
  calibration table for the 18 third-party baselines anchored to the
  throughputs published in the paper's figures and the baselines' own
  papers.

Compression *ratios* are never modeled — they come from running the real
implementations.  Real wall-clock numbers for this Python code are
measured separately by :mod:`repro.metrics.timing` and reported under a
separate column.
"""

from repro.device.machines import A100, ALL_DEVICES, RTX4090, RYZEN_2950X, XEON_6226R, Device
from repro.device.model import modeled_throughput

__all__ = [
    "A100",
    "ALL_DEVICES",
    "Device",
    "RTX4090",
    "RYZEN_2950X",
    "XEON_6226R",
    "modeled_throughput",
]
