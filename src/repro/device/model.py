"""Throughput model: our codecs via cost profiles, baselines via calibration.

Our four codecs get roofline-evaluated :class:`CostProfile` pairs (see
:mod:`repro.device.cost`).  Third-party baselines get throughputs
anchored to published measurements — the paper's own figures where
readable, the baselines' papers and nvCOMP benchmark reports otherwise —
on the reference machine of their class (RTX 4090 for GPU codecs, the
Ryzen for CPU codecs), then scaled by the target device's
``baseline_scale`` (Bitcomp by ``bitcomp_scale``; paper §5.1 notes
Bitcomp-b uniquely runs *faster* on the A100).

All numbers are GB/s of uncompressed data.  The model is deliberately
data-independent: the paper's throughput axes are per-compressor
aggregates, and the relative positions — who is on the Pareto front, by
roughly what factor codecs differ — are the reproduction target.
"""

from __future__ import annotations

from repro.device.cost import OUR_CODECS
from repro.device.machines import Device
from repro.errors import UnknownCodecError

#: (compress GB/s, decompress GB/s) on the reference device of each class.
#: GPU rows anchored to the RTX 4090, CPU rows to the Ryzen 2950X.
BASELINE_REFERENCE: dict[str, tuple[float, float]] = {
    # -- GPU (nvCOMP 2.6 benchmarks, GFC/MPC/ndzip-gpu papers, fig. 8/9/14/15)
    "ANS": (330.0, 450.0),
    "Bitcomp-b0": (500.0, 590.0),
    "Bitcomp-b1": (430.0, 520.0),
    "Bitcomp-i0": (700.0, 740.0),
    "Cascaded": (290.0, 390.0),
    "Deflate": (28.0, 95.0),
    "Gdeflate": (38.0, 190.0),
    "GFC": (88.0, 120.0),
    "LZ4": (55.0, 125.0),
    "MPC": (78.0, 110.0),
    "Snappy": (95.0, 150.0),
    "ZSTD-GPU": (14.0, 55.0),
    # -- CPU (lzbench-style numbers on a 16-core Ryzen; FPC/pFPC/SPDP papers)
    "Bzip2-fast": (0.016, 0.042),
    "Bzip2-best": (0.013, 0.036),
    "FPC": (0.55, 0.65),
    "pFPC": (1.6, 1.8),
    "FPzip": (0.20, 0.24),
    "Gzip-fast": (0.065, 0.26),
    "Gzip-best": (0.022, 0.26),
    "SPDP-fast": (0.24, 0.28),
    "SPDP-best": (0.095, 0.15),
    "ZFP": (0.85, 1.0),
    "ZSTD-CPU-fast": (0.75, 1.6),
    "ZSTD-CPU-best": (0.045, 1.3),
}

#: FP64 overrides where published behaviour differs by precision: Bitcomp's
#: double-precision *decompression* does not outrun the paper's DPspeed
#: (Fig. 15 keeps only DPspeed/DPratio on the front) even though its
#: compression does (Fig. 14), and ANS's FP64 kernels sit right at the
#: paper's A100 Pareto edge (Figs. 16/17).
BASELINE_REFERENCE_F64: dict[str, tuple[float, float]] = {
    "ANS": (460.0, 470.0),
    "Bitcomp-b0": (520.0, 460.0),
    "Bitcomp-b1": (430.0, 420.0),
    "Bitcomp-i0": (700.0, 480.0),
}

#: The exact Bitcomp variant/direction pairs the paper observed running
#: *faster* on the A100 than the RTX 4090 (§5.1: "Bitcomp-b0's
#: decompressor and Bitcomp-b1's compressor and decompressor run faster
#: on the A100"); these take ``Device.bitcomp_scale`` instead of
#: ``baseline_scale``.
_A100_FASTER_BITCOMP = {
    ("Bitcomp-b0", "decompress"),
    ("Bitcomp-b1", "compress"),
    ("Bitcomp-b1", "decompress"),
}

#: ndzip has distinct CPU (OpenMP) and GPU (CUDA) implementations; the
#: registry name is shared, so resolve by device kind.
_NDZIP_REFERENCE = {"gpu": (135.0, 160.0), "cpu": (3.0, 3.4)}


def modeled_throughput(
    name: str, device: Device, direction: str, dtype: str | None = None
) -> float:
    """Modeled GB/s for ``name`` on ``device``.

    ``direction`` is ``"compress"`` or ``"decompress"``; ``dtype`` may be
    ``"float64"`` to select the FP64 calibration overrides.
    """
    if direction not in ("compress", "decompress"):
        raise ValueError("direction must be 'compress' or 'decompress'")
    key = name.lower()
    if key in OUR_CODECS:
        profile = getattr(OUR_CODECS[key], direction)
        return profile.throughput(device)
    if name == "Ndzip":
        ref = _NDZIP_REFERENCE[device.kind]
        value = ref[0] if direction == "compress" else ref[1]
        return value * device.baseline_scale
    table = BASELINE_REFERENCE
    if dtype == "float64" and name in BASELINE_REFERENCE_F64:
        table = BASELINE_REFERENCE_F64
    if name not in table:
        raise UnknownCodecError(f"no throughput calibration for {name!r}")
    comp, decomp = table[name]
    value = comp if direction == "compress" else decomp
    scale = device.baseline_scale
    if (name, direction) in _A100_FASTER_BITCOMP:
        scale = device.bitcomp_scale
    return value * scale
