"""The stage-component catalogue for pipeline synthesis.

Each component is a named, parameterised constructor for a
:class:`~repro.stages.Stage`.  The catalogue covers every transformation
in the paper (DIFFMS, MPLG, BIT, RZE, RAZE, RARE, FCM) at both word
granularities, which is the search space the LC methodology explores:
"we only considered transformations that we could efficiently implement
on CPUs and GPUs" (§1).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.stages import (
    RARE,
    RAZE,
    RZE,
    BitTranspose,
    ByteShuffle,
    DiffMS,
    FCMStage,
    MPLG,
    Stage,
    XorDelta,
)


@dataclass(frozen=True)
class Component:
    """A named stage constructor with placement constraints."""

    name: str
    build: Callable[[], Stage]
    #: terminal components (packers/eliminators) only make sense at the end
    terminal: bool = False
    #: global components run before chunking and may appear once, first
    global_stage: bool = False


def _catalogue() -> dict[str, Component]:
    components = [
        Component("diffms32", lambda: DiffMS(32)),
        Component("diffms64", lambda: DiffMS(64)),
        Component("bit32", lambda: BitTranspose(32)),
        Component("bit64", lambda: BitTranspose(64)),
        Component("mplg32", lambda: MPLG(32), terminal=True),
        Component("mplg64", lambda: MPLG(64), terminal=True),
        Component("rze", lambda: RZE(), terminal=True),
        Component("raze32", lambda: RAZE(32), terminal=True),
        Component("raze64", lambda: RAZE(64), terminal=True),
        Component("rare32", lambda: RARE(32), terminal=True),
        Component("rare64", lambda: RARE(64), terminal=True),
        Component("xordelta32", lambda: XorDelta(32)),
        Component("xordelta64", lambda: XorDelta(64)),
        Component("shuf32", lambda: ByteShuffle(32)),
        Component("shuf64", lambda: ByteShuffle(64)),
        Component("fcm", lambda: FCMStage(), global_stage=True),
    ]
    return {c.name: c for c in components}


COMPONENTS: dict[str, Component] = _catalogue()


def component_names() -> list[str]:
    return sorted(COMPONENTS)


def make_stage(name: str) -> Stage:
    """Instantiate a catalogue component by name."""
    if name not in COMPONENTS:
        raise KeyError(f"unknown component {name!r}; see component_names()")
    return COMPONENTS[name].build()
