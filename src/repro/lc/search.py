"""Exhaustive pipeline enumeration and scoring (the LC methodology).

:func:`enumerate_pipelines` yields every stage chain up to a depth bound,
respecting placement constraints (a global FCM may only lead; terminal
packers may not be followed by word-level transforms at a different
granularity is *not* enforced — LC explores freely and lets the scores
speak).  :func:`synthesize` scores each candidate on sample data by
compressed size (with a throughput penalty per stage, mirroring the
paper's requirement that every stage stay implementable at speed) and
returns the ranked results.

At the default depth the space holds a few thousand candidates; the
paper ran >100k via the full LC framework — same idea, smaller catalogue.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from itertools import product

from repro.core.chunking import CHUNK_SIZE, iter_chunks
from repro.lc.components import COMPONENTS, Component


@dataclass(frozen=True)
class SearchResult:
    """One scored pipeline candidate."""

    stages: tuple[str, ...]
    compressed_size: int
    original_size: int
    score: float

    @property
    def ratio(self) -> float:
        return self.original_size / self.compressed_size if self.compressed_size else 0.0


def enumerate_pipelines(
    max_stages: int = 3,
    *,
    word_bits: int | None = None,
    allow_global: bool = True,
) -> Iterator[tuple[str, ...]]:
    """Yield candidate stage-name chains up to ``max_stages`` long.

    ``word_bits`` filters the catalogue to components of one granularity
    (granularity-free components like RZE and FCM always qualify).
    """
    def admissible(component: Component) -> bool:
        if word_bits is None:
            return True
        name = component.name
        if name.endswith("32"):
            return word_bits == 32
        if name.endswith("64"):
            return word_bits == 64
        return True

    chunk_components = [
        c.name for c in COMPONENTS.values() if not c.global_stage and admissible(c)
    ]
    global_components = [
        c.name for c in COMPONENTS.values() if c.global_stage and allow_global
    ]
    for depth in range(1, max_stages + 1):
        for chain in product(chunk_components, repeat=depth):
            # Terminal components may appear anywhere (LC explores freely)
            # but a chain of only repeated identical stages is pointless.
            if any(a == b for a, b in zip(chain, chain[1:])):
                continue
            yield chain
            for head in global_components:
                yield (head, *chain)


def _run_pipeline(stage_names: Sequence[str], data: bytes) -> int:
    """Compressed size of ``data`` under the chain (chunked, with fallback)."""
    from repro.lc.components import make_stage

    stages = [make_stage(name) for name in stage_names]
    if stages and COMPONENTS[stage_names[0]].global_stage:
        data = stages[0].encode(data)
        stages = stages[1:]
    total = 0
    for chunk in iter_chunks(data, CHUNK_SIZE):
        body = chunk
        for stage in stages:
            body = stage.encode(body)
        total += 1 + min(len(body), len(chunk))  # chunk flag + raw fallback
    return total


def synthesize(
    data: bytes,
    *,
    max_stages: int = 3,
    word_bits: int | None = None,
    allow_global: bool = True,
    stage_penalty: float = 0.01,
    top: int = 10,
) -> list[SearchResult]:
    """Rank pipeline candidates on ``data``; lower score is better.

    ``stage_penalty`` charges each stage a fraction of the input size,
    standing in for its throughput cost — LC's "ratio" objective under a
    speed constraint.  Returns the ``top`` results, best first.
    """
    results = []
    for chain in enumerate_pipelines(max_stages, word_bits=word_bits,
                                     allow_global=allow_global):
        size = _run_pipeline(chain, data)
        score = size + stage_penalty * len(chain) * len(data)
        results.append(SearchResult(chain, size, len(data), score))
    results.sort(key=lambda r: r.score)
    return results[:top]
