"""A miniature LC framework: automatic compression-algorithm synthesis.

The paper's four algorithms were designed "with the help of the LC
framework [4], which can automatically synthesize data compressors.  We
used it to generate over 100,000 algorithms, the best of which we then
analyzed" (§3).  This subpackage reproduces that methodology at library
scale: a catalogue of composable stage components
(:mod:`repro.lc.components`) and an exhaustive pipeline search with
scoring (:mod:`repro.lc.search`) that rediscovers the paper's stage
chains on representative data.
"""

from repro.lc.components import COMPONENTS, component_names, make_stage
from repro.lc.search import SearchResult, enumerate_pipelines, synthesize

__all__ = [
    "COMPONENTS",
    "SearchResult",
    "component_names",
    "enumerate_pipelines",
    "make_stage",
    "synthesize",
]
