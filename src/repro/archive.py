"""Multi-member archives: many named arrays in one random-access blob.

Scientific campaigns store hundreds of fields per snapshot (the CESM-ATM
dataset alone has 33).  An :class:`Archive` packs one FPRZ container per
member behind a central index, so any member decodes alone — the chunked
container gives parallel decode *within* a member, the archive gives
random access *across* members.

Layout::

    magic "FPRA" | version u8 | reserved u8 | n_members u16
    index: per member -> u16 name length, name (utf-8), u64 offset, u64 size
    member containers, concatenated

Offsets are relative to the start of the member section, so index size
changes never invalidate them.

Example::

    blob = write_archive({"T": temperature, "P": pressure}, mode="ratio")
    archive = Archive.from_bytes(blob)
    pressure = archive.read("P")
"""

from __future__ import annotations

import struct
from collections.abc import Mapping

import numpy as np

from repro.api import compress, decompress, decompress_range, inspect
from repro.core.container import DEFAULT_CHECKSUM, concat_containers
from repro.errors import FormatError
from repro.reader import ContainerReader

MAGIC = b"FPRA"
VERSION = 1

_HEADER = struct.Struct("<4sBBH")


def _pack_archive(blobs: list[tuple[str, bytes]]) -> bytes:
    """Serialise ``(name, container)`` pairs into one archive blob."""
    if len(blobs) > 0xFFFF:
        raise ValueError("archives hold at most 65535 members")
    seen: set[str] = set()
    index = bytearray()
    offset = 0
    for name, blob in blobs:
        encoded_name = name.encode("utf-8")
        if not 0 < len(encoded_name) <= 0xFFFF:
            raise ValueError(f"member name {name!r} must encode to 1..65535 bytes")
        if name in seen:
            raise ValueError(f"duplicate archive member {name!r}")
        seen.add(name)
        index += struct.pack("<H", len(encoded_name))
        index += encoded_name
        index += struct.pack("<QQ", offset, len(blob))
        offset += len(blob)
    header = _HEADER.pack(MAGIC, VERSION, 0, len(blobs))
    return header + bytes(index) + b"".join(blob for _, blob in blobs)


def write_archive(
    members: Mapping[str, np.ndarray | bytes],
    *,
    codec: str | None = None,
    mode: str = "ratio",
    checksum: bool = DEFAULT_CHECKSUM,
    workers: int = 1,
) -> bytes:
    """Compress ``members`` into one archive blob (iteration order kept)."""
    blobs = [
        (name, compress(data, codec, mode=mode, checksum=checksum, workers=workers))
        for name, data in members.items()
    ]
    return _pack_archive(blobs)


def append_archive(
    blob: bytes,
    members: Mapping[str, np.ndarray | bytes],
    *,
    codec: str | None = None,
    mode: str = "ratio",
    checksum: bool = DEFAULT_CHECKSUM,
    workers: int = 1,
) -> bytes:
    """Add members to an existing archive without re-encoding the old ones.

    Existing member containers are copied into the result byte-for-byte;
    only the new ``members`` are compressed.  Name collisions with
    existing members raise :class:`ValueError`.
    """
    archive = Archive.from_bytes(blob)
    blobs = [(name, archive._member_blob(name)) for name in archive.members()]
    blobs += [
        (name, compress(data, codec, mode=mode, checksum=checksum, workers=workers))
        for name, data in members.items()
    ]
    return _pack_archive(blobs)


class Archive:
    """Read-only view over an archive blob with lazy member decoding."""

    def __init__(self, blob: bytes, index: dict[str, tuple[int, int]], base: int) -> None:
        self._blob = blob
        self._index = index
        self._base = base

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Archive":
        if len(blob) < _HEADER.size:
            raise FormatError("archive shorter than its header")
        magic, version, _, n_members = _HEADER.unpack_from(blob, 0)
        if magic != MAGIC:
            raise FormatError(f"bad magic {magic!r}; not an FPRA archive")
        if version != VERSION:
            raise FormatError(f"unsupported archive version {version}")
        pos = _HEADER.size
        index: dict[str, tuple[int, int]] = {}
        for _ in range(n_members):
            if pos + 2 > len(blob):
                raise FormatError("truncated archive index")
            (name_len,) = struct.unpack_from("<H", blob, pos)
            pos += 2
            if pos + name_len + 16 > len(blob):
                raise FormatError("truncated archive index entry")
            name = blob[pos : pos + name_len].decode("utf-8")
            pos += name_len
            offset, size = struct.unpack_from("<QQ", blob, pos)
            pos += 16
            if name in index:
                raise FormatError(f"duplicate archive member {name!r}")
            index[name] = (offset, size)
        base = pos
        expected_end = base + sum(size for _, size in index.values())
        if expected_end != len(blob):
            raise FormatError(
                f"archive payload length mismatch: index implies {expected_end}, "
                f"blob has {len(blob)}"
            )
        return cls(blob, index, base)

    def members(self) -> list[str]:
        """Member names, in archive order."""
        return sorted(self._index, key=lambda n: self._index[n][0])

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._index)

    def _member_blob(self, name: str) -> bytes:
        if name not in self._index:
            raise KeyError(f"no archive member {name!r}")
        offset, size = self._index[name]
        start = self._base + offset
        return self._blob[start : start + size]

    def read(
        self,
        name: str,
        *,
        workers: int = 1,
        policy=None,
        start: int | None = None,
        stop: int | None = None,
    ) -> np.ndarray | bytes:
        """Decode one member (nothing else is touched).

        ``policy`` takes the full executor vocabulary — ``"serial"``,
        ``"threaded"``, ``"static-blocks"``, ``"process"``, or a
        prebuilt :class:`~repro.core.executors.Executor` — exactly like
        :func:`repro.decompress`'s ``executor`` argument.  Passing
        ``start``/``stop`` decodes only that element range (a 1-D
        result; see :func:`repro.decompress_range`), so a small window
        of a large member never pays for the whole container.
        """
        blob = self._member_blob(name)
        if start is not None or stop is not None:
            return decompress_range(
                blob, start, stop, workers=workers, executor=policy
            )
        return decompress(blob, workers=workers, executor=policy)

    def reader(self, name: str, *, workers: int = 1, policy=None) -> ContainerReader:
        """A lazy :class:`~repro.reader.ContainerReader` over one member.

        Nothing decodes until sliced: ``archive.reader("P")[a:b]`` reads
        only the chunks overlapping ``[a, b)``.
        """
        return ContainerReader(self._member_blob(name), workers=workers,
                               executor=policy)

    def concat(self, names) -> bytes:
        """Merge members into one v3 container, copying payloads verbatim.

        The named members (which must share codec and dtype) become a
        single seekable container whose content is their concatenation —
        no chunk is ever re-encoded (see
        :func:`repro.core.container.concat_containers`).
        """
        return concat_containers([self._member_blob(name) for name in names])

    def info(self, name: str):
        """Container metadata for one member without decoding it."""
        return inspect(self._member_blob(name))

    def total_ratio(self) -> float:
        """Aggregate compression ratio across all members."""
        original = sum(self.info(name).original_len for name in self._index)
        compressed = sum(size for _, size in self._index.values())
        return original / compressed if compressed else 0.0
