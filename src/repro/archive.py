"""Multi-member archives: many named arrays in one random-access blob.

Scientific campaigns store hundreds of fields per snapshot (the CESM-ATM
dataset alone has 33).  An :class:`Archive` packs one FPRZ container per
member behind a central index, so any member decodes alone — the chunked
container gives parallel decode *within* a member, the archive gives
random access *across* members.

Layout::

    magic "FPRA" | version u8 | reserved u8 | n_members u16
    index: per member -> u16 name length, name (utf-8), u64 offset, u64 size
    member containers, concatenated

Offsets are relative to the start of the member section, so index size
changes never invalidate them.

Example::

    blob = write_archive({"T": temperature, "P": pressure}, mode="ratio")
    archive = Archive.from_bytes(blob)
    pressure = archive.read("P")
"""

from __future__ import annotations

import struct
from collections.abc import Mapping

import numpy as np

from repro.api import compress, decompress, inspect
from repro.core.container import DEFAULT_CHECKSUM
from repro.errors import FormatError

MAGIC = b"FPRA"
VERSION = 1

_HEADER = struct.Struct("<4sBBH")


def write_archive(
    members: Mapping[str, np.ndarray | bytes],
    *,
    codec: str | None = None,
    mode: str = "ratio",
    checksum: bool = DEFAULT_CHECKSUM,
    workers: int = 1,
) -> bytes:
    """Compress ``members`` into one archive blob (iteration order kept)."""
    if len(members) > 0xFFFF:
        raise ValueError("archives hold at most 65535 members")
    blobs: list[tuple[str, bytes]] = []
    for name, data in members.items():
        encoded_name = name.encode("utf-8")
        if not 0 < len(encoded_name) <= 0xFFFF:
            raise ValueError(f"member name {name!r} must encode to 1..65535 bytes")
        blobs.append(
            (name, compress(data, codec, mode=mode, checksum=checksum, workers=workers))
        )
    index = bytearray()
    offset = 0
    for name, blob in blobs:
        encoded_name = name.encode("utf-8")
        index += struct.pack("<H", len(encoded_name))
        index += encoded_name
        index += struct.pack("<QQ", offset, len(blob))
        offset += len(blob)
    header = _HEADER.pack(MAGIC, VERSION, 0, len(blobs))
    return header + bytes(index) + b"".join(blob for _, blob in blobs)


class Archive:
    """Read-only view over an archive blob with lazy member decoding."""

    def __init__(self, blob: bytes, index: dict[str, tuple[int, int]], base: int) -> None:
        self._blob = blob
        self._index = index
        self._base = base

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Archive":
        if len(blob) < _HEADER.size:
            raise FormatError("archive shorter than its header")
        magic, version, _, n_members = _HEADER.unpack_from(blob, 0)
        if magic != MAGIC:
            raise FormatError(f"bad magic {magic!r}; not an FPRA archive")
        if version != VERSION:
            raise FormatError(f"unsupported archive version {version}")
        pos = _HEADER.size
        index: dict[str, tuple[int, int]] = {}
        for _ in range(n_members):
            if pos + 2 > len(blob):
                raise FormatError("truncated archive index")
            (name_len,) = struct.unpack_from("<H", blob, pos)
            pos += 2
            if pos + name_len + 16 > len(blob):
                raise FormatError("truncated archive index entry")
            name = blob[pos : pos + name_len].decode("utf-8")
            pos += name_len
            offset, size = struct.unpack_from("<QQ", blob, pos)
            pos += 16
            if name in index:
                raise FormatError(f"duplicate archive member {name!r}")
            index[name] = (offset, size)
        base = pos
        expected_end = base + sum(size for _, size in index.values())
        if expected_end != len(blob):
            raise FormatError(
                f"archive payload length mismatch: index implies {expected_end}, "
                f"blob has {len(blob)}"
            )
        return cls(blob, index, base)

    def members(self) -> list[str]:
        """Member names, in archive order."""
        return sorted(self._index, key=lambda n: self._index[n][0])

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._index)

    def _member_blob(self, name: str) -> bytes:
        if name not in self._index:
            raise KeyError(f"no archive member {name!r}")
        offset, size = self._index[name]
        start = self._base + offset
        return self._blob[start : start + size]

    def read(self, name: str, *, workers: int = 1) -> np.ndarray | bytes:
        """Decode one member (nothing else is touched)."""
        return decompress(self._member_blob(name), workers=workers)

    def info(self, name: str):
        """Container metadata for one member without decoding it."""
        return inspect(self._member_blob(name))

    def total_ratio(self) -> float:
        """Aggregate compression ratio across all members."""
        original = sum(self.info(name).original_len for name in self._index)
        compressed = sum(size for _, size in self._index.values())
        return original / compressed if compressed else 0.0
